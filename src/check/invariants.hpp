// Runtime invariant checker for the hypervisor simulation.
//
// The paper's claims rest on the simulator conserving physical quantities
// (instructions, memory chunks) and on the Credit-family schedulers obeying
// Xen's accounting rules; a silent regression in hv/ or numa/ would flow
// straight into every figure.  This subsystem validates those properties
// continuously while a simulation runs:
//
//  * engine:   event timestamps never decrease; equal-time events fire in
//              FIFO sequence order (the engine's determinism contract);
//  * hv/credit: credits stay inside [floor, cap], priority matches the
//              UNDER/OVER sign rule, the accounting pass only grants (never
//              debits) and never grants more than the machine's credit
//              budget per pass;
//  * run queues: every VCPU is running on exactly one PCPU, queued on
//              exactly one run queue, or blocked — never duplicated, never
//              queued in a state other than Runnable, never on a PCPU its
//              affinity mask forbids;
//  * memory:   per-node used/free chunk counts stay non-negative and match
//              the sum of every domain's placement census (catches leaks
//              and double-frees that NDEBUG builds would let through);
//  * teardown: destroying a domain returns every freed chunk to the node
//              it was homed on, and no event is ever traced against a VCPU
//              that has been retired (dynamic-scenario rules).
//
// The checker attaches to one Hypervisor as its engine observer and
// HvObserver; hook call sites exist only when the build defines
// VPROBE_CHECKS (the default preset), so a Release build without the macro
// pays nothing.  Violations are recorded, not thrown, so a test can run a
// deliberately broken scheduler and assert the checker fired; expect_ok()
// escalates to an exception for production runs (--checks).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "hv/observer.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vprobe::hv {
class Hypervisor;
struct Pcpu;
}  // namespace vprobe::hv

namespace vprobe::check {

/// One detected invariant violation.
struct Violation {
  std::string what;  ///< human-readable description
  sim::Time when;    ///< simulated time it was detected
};

class InvariantChecker final : public sim::Engine::Observer,
                               public hv::HvObserver {
 public:
  struct Config {
    bool credits = true;     ///< credit bounds / legality / conservation
    bool runqueues = true;   ///< run-queue consistency sweep
    bool memory = true;      ///< chunk conservation sweep
    bool event_time = true;  ///< engine timestamp monotonicity
    bool teardown = true;    ///< domain-destroy conservation + dead-VCPU rules
    /// Stop recording (but keep counting) after this many violations.
    std::size_t max_violations = 64;
    /// Slack for floating-point credit comparisons.
    double epsilon = 1e-6;
  };

  InvariantChecker() = default;
  explicit InvariantChecker(Config cfg) : cfg_(cfg) {}
  ~InvariantChecker() override;

  /// Register as `hv`'s engine observer and hypervisor observer.  The
  /// checker must outlive the hypervisor or detach() first; declare it
  /// before the hypervisor (or call detach()) in owning scopes.
  void attach(hv::Hypervisor& hv);
  /// Per-machine attachment for fleets sharing one engine: the engine has a
  /// single observer slot, so exactly one host's checker passes
  /// `engine_observer = true`; the others still get every HvObserver hook
  /// (credit/page/byte conservation per host).
  void attach(hv::Hypervisor& hv, bool engine_observer);
  void detach();

  /// Label prefixed to every violation ("[host0] ..."), so a fleet of
  /// checkers stays attributable per machine.
  void set_scope(std::string scope) { scope_ = std::move(scope); }
  const std::string& scope() const { return scope_; }

  /// One-shot full sweep (run queues, credits, memory) of the attached
  /// hypervisor — usable even in builds without VPROBE_CHECKS hooks.
  void check_now();

  bool ok() const { return total_violations_ == 0; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t total_violations() const { return total_violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  std::uint64_t events_seen() const { return events_seen_; }
  void clear();

  /// Throw std::runtime_error describing the first violations, if any.
  void expect_ok() const;

  // -- sim::Engine::Observer --------------------------------------------------
  void on_event(sim::Time when, std::uint64_t seq) override;

  // -- hv::HvObserver ---------------------------------------------------------
  void after_tick(hv::Hypervisor& hv, hv::Pcpu& pcpu) override;
  void before_accounting(hv::Hypervisor& hv) override;
  void after_accounting(hv::Hypervisor& hv) override;
  void on_domain_created(hv::Hypervisor& hv, hv::Domain& dom) override;
  void before_domain_destroy(hv::Hypervisor& hv, hv::Domain& dom) override;
  void after_domain_destroy(hv::Hypervisor& hv) override;
  void on_trace_event(hv::Hypervisor& hv, trace::EventKind kind,
                      int vcpu_id) override;

 private:
  void check_runqueues();
  void check_credit_legality();
  void check_memory();
  void report(std::string what);

  Config cfg_{};
  hv::Hypervisor* hv_ = nullptr;
  std::string scope_;
  bool have_last_event_ = false;
  sim::Time last_event_time_ = sim::Time::zero();
  std::uint64_t last_event_seq_ = 0;
  std::vector<double> credits_before_;
  // Teardown bookkeeping: snapshot of per-node free counts and the dying
  // domain's census taken in before_domain_destroy, compared after.  Retired
  // VCPU ids stage through pending_dead_ids_ because destroy_domain itself
  // legitimately emits kRetire/kSwitchOut events naming them.
  std::vector<std::int64_t> free_before_destroy_;
  std::vector<std::int64_t> destroy_census_;
  std::vector<int> pending_dead_ids_;
  std::unordered_set<std::uintptr_t> dead_vcpus_;  ///< retired storage addresses
  std::unordered_set<int> dead_vcpu_ids_;  ///< ids never reused (monotonic)
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t checks_run_ = 0;
  std::uint64_t events_seen_ = 0;
};

/// RAII wrapper for run-integrated checking (RunConfig::checks): attaches a
/// checker when `enabled`, detaches on destruction.  expect_ok() runs a
/// final full sweep and throws on any violation; inert when disabled.
class ScopedCheck {
 public:
  ScopedCheck(hv::Hypervisor& hv, bool enabled);
  ~ScopedCheck();
  ScopedCheck(const ScopedCheck&) = delete;
  ScopedCheck& operator=(const ScopedCheck&) = delete;

  void expect_ok();
  InvariantChecker* checker() { return checker_.get(); }

 private:
  std::unique_ptr<InvariantChecker> checker_;
};

}  // namespace vprobe::check
