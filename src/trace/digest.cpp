#include "trace/digest.hpp"

#include <cstdio>

namespace vprobe::trace {

void TraceDigest::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffu;
    hash_ *= kPrime;
  }
}

void TraceDigest::add(const Record& r) {
  mix(static_cast<std::uint64_t>(r.when.nanos()));
  mix(static_cast<std::uint64_t>(r.kind));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.vcpu)));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.pcpu)));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.aux)));
  ++records_;
}

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t digest_records(std::span<const Record> records) {
  TraceDigest d;
  for (const Record& r : records) d.add(r);
  return d.value();
}

std::string digest_hex(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

}  // namespace vprobe::trace
