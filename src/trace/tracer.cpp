#include "trace/tracer.hpp"

#include <algorithm>
#include <stdexcept>

namespace vprobe::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSwitchIn:  return "switch-in";
    case EventKind::kSwitchOut: return "switch-out";
    case EventKind::kWake:      return "wake";
    case EventKind::kBlock:     return "block";
    case EventKind::kFinish:    return "finish";
    case EventKind::kMigration: return "migration";
    case EventKind::kPartition: return "partition";
    case EventKind::kPageMove:  return "page-move";
    case EventKind::kPause:     return "pause";
    case EventKind::kResume:    return "resume";
    case EventKind::kRetire:    return "retire";
    case EventKind::kDomainDestroy: return "domain-destroy";
    case EventKind::kCount:     break;
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("Tracer: capacity must be > 0");
  ring_.resize(capacity);
}

void Tracer::record(sim::Time when, EventKind kind, std::int32_t vcpu,
                    std::int32_t pcpu, std::int32_t aux) {
  ring_[next_] = Record{when, kind, vcpu, pcpu, aux};
  digest_.add(ring_[next_]);
  // Wrap with a compare instead of %: next_ is always < size, and the
  // division would be the most expensive instruction on this hot path.
  if (++next_ == ring_.size()) next_ = 0;
  ++total_;
  ++counts_[static_cast<std::size_t>(kind)];
}

std::vector<Record> Tracer::snapshot() const {
  std::vector<Record> out;
  const std::size_t kept = static_cast<std::size_t>(
      std::min<std::uint64_t>(total_, ring_.size()));
  out.reserve(kept);
  // Oldest retained element sits at next_ when the ring has wrapped.
  std::size_t idx = total_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < kept; ++i) {
    out.push_back(ring_[idx]);
    if (++idx == ring_.size()) idx = 0;
  }
  return out;
}

void Tracer::clear() {
  next_ = 0;
  total_ = 0;
  digest_ = TraceDigest{};
  counts_.fill(0);
}

void Tracer::dump(std::FILE* out, std::size_t limit) const {
  const auto events = snapshot();
  const std::size_t begin = events.size() > limit ? events.size() - limit : 0;
  for (std::size_t i = begin; i < events.size(); ++i) {
    const Record& r = events[i];
    std::fprintf(out, "[%12.6f] %-10s vcpu=%-3d pcpu=%-2d aux=%d\n",
                 r.when.to_seconds(), to_string(r.kind), r.vcpu, r.pcpu, r.aux);
  }
  std::fprintf(out, "total=%llu dropped=%llu\n",
               static_cast<unsigned long long>(total_),
               static_cast<unsigned long long>(dropped()));
}

}  // namespace vprobe::trace
