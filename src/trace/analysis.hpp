// Offline analysis over trace records: per-VCPU node residency (how much
// CPU time each VCPU spent on each NUMA node) and the PCPU->PCPU migration
// matrix.  These are the views that make a scheduler's placement behaviour
// legible — "did the partitioner actually keep VM1's VCPUs on node 0?"
// becomes a one-line answer.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "numa/topology.hpp"
#include "trace/event.hpp"

namespace vprobe::trace {

/// Per-VCPU CPU time broken down by the node it ran on.
class NodeResidency {
 public:
  /// Integrates switch-in/switch-out pairs over `records` (chronological).
  /// Unpaired trailing switch-ins are closed at `horizon`.
  NodeResidency(const std::vector<Record>& records,
                const numa::Topology& topology, sim::Time horizon);

  /// Seconds `vcpu` spent running on `node` (0 when never seen).
  double seconds_on(int vcpu, numa::NodeId node) const;

  /// Fraction of `vcpu`'s tracked CPU time spent on `node`.
  double fraction_on(int vcpu, numa::NodeId node) const;

  /// All VCPUs seen, ascending.
  std::vector<int> vcpus() const;

  std::string summary(int max_rows = 32) const;

 private:
  int num_nodes_;
  std::map<int, std::vector<double>> seconds_;  // vcpu -> per-node seconds
};

/// Count of migrations between every (from-pcpu, to-pcpu) pair.
class MigrationMatrix {
 public:
  MigrationMatrix(const std::vector<Record>& records, int num_pcpus);

  std::uint64_t between(int from, int to) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t cross_node(const numa::Topology& topology) const;

 private:
  int num_pcpus_;
  std::vector<std::uint64_t> counts_;  // row-major [from][to]
  std::uint64_t total_ = 0;
};

}  // namespace vprobe::trace
