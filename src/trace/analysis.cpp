#include "trace/analysis.hpp"

#include <sstream>
#include <unordered_map>

namespace vprobe::trace {

NodeResidency::NodeResidency(const std::vector<Record>& records,
                             const numa::Topology& topology, sim::Time horizon)
    : num_nodes_(topology.num_nodes()) {
  struct Open {
    sim::Time since;
    numa::NodeId node;
  };
  std::unordered_map<int, Open> open;

  auto close = [&](int vcpu, sim::Time until) {
    auto it = open.find(vcpu);
    if (it == open.end()) return;
    auto& row = seconds_[vcpu];
    if (row.empty()) row.assign(static_cast<std::size_t>(num_nodes_), 0.0);
    row[static_cast<std::size_t>(it->second.node)] +=
        (until - it->second.since).to_seconds();
    open.erase(it);
  };

  for (const Record& r : records) {
    if (r.kind == EventKind::kSwitchIn) {
      close(r.vcpu, r.when);  // tolerate missing switch-out (ring dropped it)
      open[r.vcpu] = Open{r.when, topology.node_of(r.pcpu)};
    } else if (r.kind == EventKind::kSwitchOut) {
      close(r.vcpu, r.when);
    }
  }
  for (const auto& [vcpu, o] : open) {
    auto& row = seconds_[vcpu];
    if (row.empty()) row.assign(static_cast<std::size_t>(num_nodes_), 0.0);
    if (horizon > o.since) {
      row[static_cast<std::size_t>(o.node)] += (horizon - o.since).to_seconds();
    }
  }
}

double NodeResidency::seconds_on(int vcpu, numa::NodeId node) const {
  auto it = seconds_.find(vcpu);
  if (it == seconds_.end()) return 0.0;
  return it->second.at(static_cast<std::size_t>(node));
}

double NodeResidency::fraction_on(int vcpu, numa::NodeId node) const {
  auto it = seconds_.find(vcpu);
  if (it == seconds_.end()) return 0.0;
  double total = 0.0;
  for (double s : it->second) total += s;
  return total > 0.0 ? it->second.at(static_cast<std::size_t>(node)) / total : 0.0;
}

std::vector<int> NodeResidency::vcpus() const {
  std::vector<int> out;
  out.reserve(seconds_.size());
  for (const auto& [vcpu, row] : seconds_) out.push_back(vcpu);
  return out;
}

std::string NodeResidency::summary(int max_rows) const {
  std::ostringstream os;
  os << "vcpu  ";
  for (int n = 0; n < num_nodes_; ++n) os << " node" << n << "(s)";
  os << '\n';
  int rows = 0;
  for (const auto& [vcpu, row] : seconds_) {
    if (rows++ >= max_rows) {
      os << "... (" << seconds_.size() - static_cast<std::size_t>(max_rows)
         << " more)\n";
      break;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%-6d", vcpu);
    os << buf;
    for (double s : row) {
      std::snprintf(buf, sizeof buf, " %8.3f", s);
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

MigrationMatrix::MigrationMatrix(const std::vector<Record>& records,
                                 int num_pcpus)
    : num_pcpus_(num_pcpus),
      counts_(static_cast<std::size_t>(num_pcpus) * static_cast<std::size_t>(num_pcpus),
              0) {
  for (const Record& r : records) {
    if (r.kind != EventKind::kMigration) continue;
    // Migration records carry aux = previous pcpu.
    const int from = r.aux;
    const int to = r.pcpu;
    if (from < 0 || from >= num_pcpus_ || to < 0 || to >= num_pcpus_) continue;
    ++counts_[static_cast<std::size_t>(from) * static_cast<std::size_t>(num_pcpus_) +
              static_cast<std::size_t>(to)];
    ++total_;
  }
}

std::uint64_t MigrationMatrix::between(int from, int to) const {
  return counts_.at(static_cast<std::size_t>(from) *
                        static_cast<std::size_t>(num_pcpus_) +
                    static_cast<std::size_t>(to));
}

std::uint64_t MigrationMatrix::cross_node(const numa::Topology& topology) const {
  std::uint64_t n = 0;
  for (int from = 0; from < num_pcpus_; ++from) {
    for (int to = 0; to < num_pcpus_; ++to) {
      if (!topology.same_node(from, to)) n += between(from, to);
    }
  }
  return n;
}

}  // namespace vprobe::trace
