// Trace event vocabulary for the hypervisor tracer (xentrace's analog).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vprobe::trace {

enum class EventKind : std::uint8_t {
  kSwitchIn = 0,   ///< vcpu starts running on pcpu
  kSwitchOut,      ///< vcpu stops running on pcpu (aux = 1 when preempted)
  kWake,           ///< vcpu became runnable
  kBlock,          ///< vcpu blocked
  kFinish,         ///< vcpu's work completed
  kMigration,      ///< vcpu changed pcpu (aux = 1 when cross-node)
  kPartition,      ///< partitioner reassigned vcpu to node aux
  kPageMove,       ///< aux chunks migrated for vcpu
  // Lifecycle events (dynamic scenarios only; static runs never emit them,
  // so appending here leaves existing golden digests untouched).
  kPause,          ///< vcpu administratively paused
  kResume,         ///< vcpu resumed from pause
  kRetire,         ///< vcpu permanently removed
  kDomainDestroy,  ///< domain torn down (aux = domain id)
  kCount,
};

const char* to_string(EventKind kind);

/// One fixed-size trace record; `aux` is event-specific (see EventKind).
struct Record {
  sim::Time when;
  EventKind kind = EventKind::kSwitchIn;
  std::int32_t vcpu = -1;
  std::int32_t pcpu = -1;
  std::int32_t aux = 0;
};

}  // namespace vprobe::trace
