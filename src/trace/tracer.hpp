// Bounded scheduler tracer.
//
// A fixed-capacity ring of Records plus running per-kind counters.  The
// ring keeps the *most recent* events (old ones are overwritten and counted
// as dropped); counters cover the whole run.  The hypervisor emits into an
// attached Tracer with one branch when none is attached, so tracing is free
// unless requested.
#pragma once

#include <array>
#include <cstdio>
#include <vector>

#include "trace/digest.hpp"
#include "trace/event.hpp"

namespace vprobe::trace {

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 65536);

  void record(sim::Time when, EventKind kind, std::int32_t vcpu,
              std::int32_t pcpu, std::int32_t aux = 0);

  /// Running FNV-1a digest over every record ever recorded — unlike
  /// digest_records(snapshot()), it does not depend on the ring capacity,
  /// so fleet digests stay exact even when a host's ring wraps.  Equal to
  /// digest_records(snapshot()) while dropped() == 0.
  std::uint64_t digest() const { return digest_.value(); }

  /// Host id this stream belongs to in a multi-machine run (-1 = unset).
  /// Tag only; records are unchanged, so single-machine digests hold.
  void set_host(int host) { host_ = host; }
  int host() const { return host_; }

  /// Events currently retained, oldest first.
  std::vector<Record> snapshot() const;

  std::uint64_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  std::size_t capacity() const { return ring_.size(); }

  void clear();

  /// Human-readable dump of the retained events (most recent `limit`).
  void dump(std::FILE* out, std::size_t limit = 50) const;

 private:
  std::vector<Record> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  int host_ = -1;
  TraceDigest digest_;
  std::array<std::uint64_t, static_cast<std::size_t>(EventKind::kCount)> counts_{};
};

}  // namespace vprobe::trace
