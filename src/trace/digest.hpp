// Stable digest of a trace stream, for golden-trace regression tests.
//
// Hashes the integer fields of every Record (time in nanoseconds, kind,
// vcpu, pcpu, aux) with 64-bit FNV-1a, little-endian, field by field.  The
// value is a pure function of the record sequence: platform-independent,
// order-sensitive, and cheap enough to fold a million-event run.  Tests
// compare it against checked-in goldens so any behavioural drift in the
// engine, hypervisor, or a scheduler shows up as a one-line diff.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/event.hpp"

namespace vprobe::trace {

class TraceDigest {
 public:
  void add(const Record& r);

  std::uint64_t value() const { return hash_; }
  std::uint64_t records() const { return records_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void mix(std::uint64_t v);

  std::uint64_t hash_ = kOffsetBasis;
  std::uint64_t records_ = 0;
};

/// Digest of a whole record sequence (e.g. Tracer::snapshot()).
std::uint64_t digest_records(std::span<const Record> records);

/// One FNV-1a step folding an arbitrary 64-bit value into `hash` — used to
/// combine per-host stream digests into a single fleet digest.  Start from
/// fnv1a_basis() and fold (host id, digest, record count) in host-id order.
std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value);
constexpr std::uint64_t fnv1a_basis() { return 1469598103934665603ull; }

/// 16 lowercase hex digits, zero-padded — the golden-file spelling.
std::string digest_hex(std::uint64_t value);

}  // namespace vprobe::trace
