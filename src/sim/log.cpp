#include "sim/log.hpp"

#include "sim/engine.hpp"

namespace vprobe::sim {

std::atomic<LogLevel> Log::default_level_{LogLevel::kOff};

LogContext::LogContext() : level_(Log::level()) {}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default:               return "?????";
  }
}
}  // namespace

void LogContext::emit_prefix(LogLevel level, const char* tag) const {
  if (engine_ != nullptr) {
    std::fprintf(sink_, "[%12.6f] %s %-8s ", engine_->now().to_seconds(),
                 level_name(level), tag);
  } else {
    std::fprintf(sink_, "[   --.-- ] %s %-8s ", level_name(level), tag);
  }
}

}  // namespace vprobe::sim
