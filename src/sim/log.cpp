#include "sim/log.hpp"

#include "sim/engine.hpp"

namespace vprobe::sim {

LogLevel Log::level_ = LogLevel::kOff;
const Engine* Log::engine_ = nullptr;

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default:               return "?????";
  }
}
}  // namespace

void Log::emit_prefix(LogLevel level, const char* tag) {
  if (engine_ != nullptr) {
    std::fprintf(stderr, "[%12.6f] %s %-8s ", engine_->now().to_seconds(),
                 level_name(level), tag);
  } else {
    std::fprintf(stderr, "[   --.-- ] %s %-8s ", level_name(level), tag);
  }
}

}  // namespace vprobe::sim
