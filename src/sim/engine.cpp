#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace vprobe::sim {

void EventHandle::cancel() {
  if (engine_ != nullptr) engine_->cancel(slot_, gen_);
}

bool EventHandle::pending() const {
  return engine_ != nullptr && engine_->is_pending(slot_, gen_);
}

void Engine::cancel(std::uint32_t idx, std::uint32_t gen) {
  Slot& s = slot(idx);
  if (s.gen != gen || s.state == Slot::State::kFree) return;  // stale handle
  s.cancelled = true;
}

bool Engine::is_pending(std::uint32_t idx, std::uint32_t gen) const {
  const Slot& s = slot(idx);
  if (s.gen != gen || s.cancelled) return false;
  // A one-shot is no longer pending while (or after) its callback runs; a
  // periodic chain stays pending across firings until cancelled.
  return s.state == Slot::State::kQueued ||
         (s.state == Slot::State::kFiring && s.period > Time::zero());
}

// ------------------------------------------------------------------ slab ----

void Engine::grow_slab() {
  const auto base = static_cast<std::uint32_t>(chunks_.size()) * kChunkSize;
  chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  Slot* chunk = chunks_.back().get();
  // Link low indices at the head so allocation order is deterministic.
  for (std::uint32_t i = kChunkSize; i-- > 0;) {
    chunk[i].next_free = free_head_;
    free_head_ = base + i;
  }
}

std::uint32_t Engine::alloc_slot() {
  if (free_head_ == kNil) grow_slab();
  const std::uint32_t idx = free_head_;
  Slot& s = slot(idx);
  free_head_ = s.next_free;
  s.state = Slot::State::kQueued;
  s.cancelled = false;
  return idx;
}

void Engine::free_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  s.fn.reset();  // release captured resources now, not at next reuse
  s.period = Time::zero();
  ++s.gen;  // invalidate every outstanding handle to this slot
  s.state = Slot::State::kFree;
  s.cancelled = false;
  s.next_free = free_head_;
  free_head_ = idx;
}

// ------------------------------------------------------------------ heap ----

// 4-ary implicit heap: half the depth of a binary heap, and the four
// children of a node sit in at most two cache lines, so the pop-side
// sift-down — the dominant cost of a large event queue — takes roughly half
// the cache misses.  Both sifts move the displaced entry through a hole
// instead of swapping, halving data movement per level.

void Engine::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);  // reserve the spot; overwritten below if e sifts up
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::heap_pop() {
  assert(!heap_.empty());
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

const Engine::HeapEntry* Engine::live_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!slot(top.slot).cancelled) return &top;
    const std::uint32_t idx = top.slot;
    heap_pop();
    free_slot(idx);
  }
  return nullptr;
}

// --------------------------------------------------------------- running ----

bool Engine::pop_one() {
  const HeapEntry* top_ptr = live_top();
  if (top_ptr == nullptr) return false;
  const HeapEntry top = *top_ptr;  // heap_pop() invalidates the pointer
  Slot& s = slot(top.slot);
  assert(top.when >= now_);
#if defined(VPROBE_CHECKS)
  if (observer_ != nullptr) observer_->on_event(top.when, top.seq);
#endif
  heap_pop();
  now_ = top.when;
  ++executed_;
  // Run the callback in place: slot addresses are stable, and the kFiring
  // state keeps the slot out of the free list while its callback executes
  // (anything the callback schedules — or a re-entrant clear() — therefore
  // cannot recycle it underneath us).
  s.state = Slot::State::kFiring;
  firing_slot_ = top.slot;
  s.fn();
  firing_slot_ = kNil;
  if (s.period > Time::zero() && !s.cancelled) {
    // Periodic: re-arm the same slot with a fresh sequence number — drawn
    // right after the callback returned, exactly where the old trampoline
    // assigned it (keeps equal-time FIFO order, and so golden traces, intact).
    s.state = Slot::State::kQueued;
    heap_push(HeapEntry{now_ + s.period, next_seq_++, top.slot});
  } else {
    free_slot(top.slot);
  }
  return true;
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  // live_top() already skips (and frees) cancelled entries without
  // advancing the clock; no separate skip loop needed here.
  while (const HeapEntry* top = live_top()) {
    if (top->when > deadline) break;
    pop_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Engine::run_before(Time deadline) {
  std::size_t n = 0;
  while (const HeapEntry* top = live_top()) {
    if (top->when >= deadline) break;
    pop_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

Time Engine::next_event_time() {
  const HeapEntry* top = live_top();
  return top != nullptr ? top->when : Time::max();
}

void Engine::advance_to(Time deadline) {
  assert(next_event_time() >= deadline);
  if (now_ < deadline) now_ = deadline;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && pop_one()) ++n;
  return n;
}

void Engine::clear() {
  heap_.clear();  // entries are PODs: no pops, no per-event heap repair
  // Rebuild the free list from scratch (low indices at the head, matching
  // grow_slab's deterministic order).  A periodic slot whose callback is
  // currently executing must not be freed out from under itself: mark it
  // cancelled and let pop_one() free it when the callback returns.
  free_head_ = kNil;
  for (auto idx = static_cast<std::uint32_t>(slab_slots()); idx-- > 0;) {
    Slot& s = slot(idx);
    if (idx == firing_slot_) {
      s.cancelled = true;
      continue;
    }
    if (s.state != Slot::State::kFree) {
      s.fn.reset();
      s.period = Time::zero();
      ++s.gen;
      s.state = Slot::State::kFree;
      s.cancelled = false;
    }
    s.next_free = free_head_;
    free_head_ = idx;
  }
}

}  // namespace vprobe::sim
