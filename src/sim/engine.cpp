#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace vprobe::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Engine::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Engine::schedule_at: time is in the past");
  }
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Item{when, next_seq_++, std::move(fn), state});
  return EventHandle{std::move(state)};
}

EventHandle Engine::schedule_periodic(Time period, std::function<void()> fn) {
  if (period <= Time::zero()) {
    throw std::invalid_argument("Engine::schedule_periodic: period must be positive");
  }
  auto state = std::make_shared<EventHandle::State>();
  // The chain re-arms itself as long as the shared state is not cancelled.
  auto arm = std::make_shared<std::function<void(Time)>>();
  *arm = [this, period, fn = std::move(fn), state, arm](Time when) {
    queue_.push(Item{when, next_seq_++,
                     [this, period, fn, state, arm] {
                       fn();
                       if (!state->cancelled) (*arm)(now_ + period);
                     },
                     state});
  };
  (*arm)(now_ + period);
  return EventHandle{std::move(state)};
}

bool Engine::pop_one() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; we must copy the function out before pop.
    Item item = queue_.top();
    queue_.pop();
    if (item.state->cancelled) continue;
    assert(item.when >= now_);
#if defined(VPROBE_CHECKS)
    if (observer_ != nullptr) observer_->on_event(item.when, item.seq);
#endif
    now_ = item.when;
    item.state->fired = true;
    ++executed_;
    item.fn();
    return true;
  }
  return false;
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip over cancelled events without advancing the clock.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    if (pop_one()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && pop_one()) ++n;
  return n;
}

void Engine::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace vprobe::sim
