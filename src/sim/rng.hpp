// Deterministic pseudo-random number generation for the simulator.
//
// Experiments must be exactly reproducible from a seed, so every stochastic
// component draws from an explicitly threaded Rng instance — never from a
// global or from std::random_device.  The generator is xoshiro256**, seeded
// via SplitMix64, which is the standard high-quality seeding recipe.
#pragma once

#include <cstdint>
#include <cmath>
#include <span>
#include <vector>

namespace vprobe::sim {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded with SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// The guarded unit uniform exponential() consumes: one next() call,
  /// clamped away from zero so log() stays finite.  Exposed so callers may
  /// pre-draw raws and apply exp_transform() later — under a rate that was
  /// not known at draw time — and still match exponential() bit for bit
  /// (the lazy arrival blocks in wl::OpenLoopClient, docs/SERVING.md).
  double draw_unit() {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return u;
  }

  /// exponential(rate) == exp_transform(draw_unit(), rate), bit for bit.
  static double exp_transform(double u, double rate) {
    return -std::log(u) / rate;
  }

  /// Normal (Gaussian) variate via Box–Muller.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// All weights must be >= 0 and at least one > 0.
  std::size_t weighted_pick(std::span<const double> weights);

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t pick_index(std::size_t size) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

  /// Seed for the `index`-th child stream of `seed` (per-host RNG streams).
  ///
  /// reseed() consumes exactly four SplitMix64 gammas starting from its
  /// argument, so advancing the seed by 4*index gammas hands every child a
  /// disjoint segment of the same SplitMix64 sequence — structurally
  /// independent streams, all from one run seed.  child_seed(s, 0) == s, so
  /// a cluster of one host reproduces the single-machine stream exactly.
  static constexpr std::uint64_t child_seed(std::uint64_t seed, int index) {
    return seed + 4ull * static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL;
  }

 private:
  std::uint64_t s_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace vprobe::sim
