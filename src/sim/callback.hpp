// Move-only type-erased `void()` callable with a fixed inline buffer.
//
// The simulation engine stores one Callback per event slot.  Captures up to
// kInlineSize bytes are constructed inside the slot itself, so scheduling,
// cancelling and firing an event touch no allocator.  Larger callables fall
// back to a single heap box — none of the in-tree call sites need it (the
// hot ones capture `this` plus a pointer or a couple of values), and
// bench/engine_bench proves the steady-state dispatch path allocation-free.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vprobe::sim {

class Callback {
 public:
  /// Inline capture budget.  Sized for the hypervisor's and workloads'
  /// lambdas (`[this, pp]`, `[this, vp]`, small `[&]` test captures) with
  /// room to spare; a capture one pointer too large silently boxes instead
  /// of failing to compile.
  static constexpr std::size_t kInlineSize = 64;

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::ops;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Destroy the current callable (if any) and construct `f` in place —
  /// saves the temporary-plus-relocate of `cb = Callback{f}` on hot paths.
  template <typename F>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (std::is_same_v<Fn, Callback>) {
      *this = std::forward<F>(f);
    } else if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::ops;
    }
  }

  /// Destroy the held callable (releases captured resources); empty after.
  void reset() {
    if (ops_ != nullptr) {
      // destroy == nullptr marks a trivially destructible inline callable
      // (the common case: captures of pointers and values); skipping the
      // indirect call there measurably speeds the fire->recycle path.
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True if a callable of type F would live in the inline buffer.
  template <typename F>
  static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<F>>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* src, void* dst) noexcept {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{
        &invoke, &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn* unbox(void* p) { return *static_cast<Fn**>(p); }
    static void invoke(void* p) { (*unbox(p))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) Fn*(unbox(src));  // steal the box; no deep move
    }
    static void destroy(void* p) noexcept { delete unbox(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace vprobe::sim
