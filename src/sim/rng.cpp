#include "sim/rng.hpp"

#include <cassert>

namespace vprobe::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  have_spare_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Debiased modulo (Lemire-style rejection is overkill for simulation use).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  return exp_transform(draw_unit(), rate);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallback
}

Rng Rng::fork() { return Rng{next()}; }

}  // namespace vprobe::sim
