// Minimal structured logging for the simulator.
//
// Logging is off by default (benchmarks must run clean); tests and examples
// can raise the level.  The logger prefixes each line with the simulated
// time of the Engine it is bound to, which makes scheduler traces readable.
#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace vprobe::sim {

class Engine;

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log configuration.  Not thread-safe by design: the simulator
/// is single-threaded (discrete-event), and benches run serially.
class Log {
 public:
  static void set_level(LogLevel level) { level_ = level; }
  static LogLevel level() { return level_; }

  /// Bind a clock so messages carry simulated timestamps (nullptr to unbind).
  static void bind_clock(const Engine* engine) { engine_ = engine; }

  static bool enabled(LogLevel level) { return level <= level_; }

  /// printf-style logging.  Example: Log::write(LogLevel::kDebug, "hv",
  /// "vcpu %d migrated to pcpu %d", v, p);
  template <typename... Args>
  static void write(LogLevel level, const char* tag, const char* fmt,
                    Args... args) {
    if (!enabled(level)) return;
    emit_prefix(level, tag);
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }

  static void write(LogLevel level, const char* tag, const char* msg) {
    if (!enabled(level)) return;
    emit_prefix(level, tag);
    std::fputs(msg, stderr);
    std::fputc('\n', stderr);
  }

 private:
  static void emit_prefix(LogLevel level, const char* tag);
  static LogLevel level_;
  static const Engine* engine_;
};

#define VPROBE_LOG(level, tag, ...)                                  \
  do {                                                               \
    if (::vprobe::sim::Log::enabled(level)) {                        \
      ::vprobe::sim::Log::write(level, tag, __VA_ARGS__);            \
    }                                                                \
  } while (0)

#define VPROBE_DEBUG(tag, ...) \
  VPROBE_LOG(::vprobe::sim::LogLevel::kDebug, tag, __VA_ARGS__)
#define VPROBE_INFO(tag, ...) \
  VPROBE_LOG(::vprobe::sim::LogLevel::kInfo, tag, __VA_ARGS__)
#define VPROBE_WARN(tag, ...) \
  VPROBE_LOG(::vprobe::sim::LogLevel::kWarn, tag, __VA_ARGS__)

}  // namespace vprobe::sim
