// Minimal structured logging for the simulator.
//
// Logging is off by default (benchmarks must run clean); tests and examples
// can raise the level.  Each Engine owns a LogContext that prefixes lines
// with that engine's simulated time, which keeps scheduler traces readable
// even when several simulations run concurrently.
//
// Thread-safety design note (TSan-reviewed): simulations run concurrently —
// one Engine per worker thread — so there must be no mutable static state
// reachable from two running engines.  All per-run state (level, clock
// binding, sink) lives in the engine's LogContext; the only process-global
// left is the *default* level new contexts inherit, stored in a lock-free
// atomic that is written by Log::set_level() (main thread, before runs
// start) and read once per Engine construction.  Two engines logging at
// once interleave at most at the granularity of one fprintf call.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace vprobe::sim {

class Engine;

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Per-simulation log sink: level, clock binding and output stream for one
/// Engine.  Not shared between engines; safe to use from the (single)
/// thread driving its engine while other engines run on other threads.
class LogContext {
 public:
  LogContext();  ///< inherits Log::default_level(), sink = stderr

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Bind a clock so messages carry simulated timestamps (nullptr to
  /// unbind).  Engine binds itself on construction.
  void bind_clock(const Engine* engine) { engine_ = engine; }

  /// Redirect output (default stderr).  Non-owning.
  void set_sink(std::FILE* sink) { sink_ = sink; }
  std::FILE* sink() const { return sink_; }

  bool enabled(LogLevel level) const { return level <= level_; }

  /// printf-style logging.  Example: ctx.write(LogLevel::kDebug, "hv",
  /// "vcpu %d migrated to pcpu %d", v, p);
  template <typename... Args>
  void write(LogLevel level, const char* tag, const char* fmt,
             Args... args) const {
    if (!enabled(level)) return;
    emit_prefix(level, tag);
    std::fprintf(sink_, fmt, args...);
    std::fputc('\n', sink_);
  }

  void write(LogLevel level, const char* tag, const char* msg) const {
    if (!enabled(level)) return;
    emit_prefix(level, tag);
    std::fputs(msg, sink_);
    std::fputc('\n', sink_);
  }

 private:
  void emit_prefix(LogLevel level, const char* tag) const;

  LogLevel level_;
  const Engine* engine_ = nullptr;
  std::FILE* sink_ = stderr;
};

/// Thin process-global shim for call sites with no engine at hand (startup
/// code, tests raising verbosity before building a hypervisor).  Holds no
/// mutable state beyond the atomic default level; messages carry no
/// simulated timestamp.
class Log {
 public:
  /// Default level inherited by every LogContext constructed afterwards.
  /// Call from the main thread before launching concurrent runs.
  static void set_level(LogLevel level) {
    default_level_.store(level, std::memory_order_relaxed);
  }
  static LogLevel level() {
    return default_level_.load(std::memory_order_relaxed);
  }

  static bool enabled(LogLevel level) { return level <= Log::level(); }

  template <typename... Args>
  static void write(LogLevel level, const char* tag, const char* fmt,
                    Args... args) {
    if (!enabled(level)) return;
    LogContext ctx;  // unbound: "--.--" timestamp, current default level
    ctx.write(level, tag, fmt, args...);
  }

  static void write(LogLevel level, const char* tag, const char* msg) {
    if (!enabled(level)) return;
    LogContext ctx;
    ctx.write(level, tag, msg);
  }

 private:
  static std::atomic<LogLevel> default_level_;
  static_assert(std::atomic<LogLevel>::is_always_lock_free,
                "the process-global default level must stay a lock-free "
                "atomic: it is the only static the logger keeps, and "
                "concurrent engines may construct LogContexts while it is "
                "being read");
};

/// Log through a specific context (the per-engine form; `ctx` is a
/// LogContext, e.g. `engine.log()`).
#define VPROBE_CLOG(ctx, level, tag, ...)       \
  do {                                          \
    if ((ctx).enabled(level)) {                 \
      (ctx).write(level, tag, __VA_ARGS__);     \
    }                                           \
  } while (0)

/// Process-global convenience forms (no simulated timestamp).
#define VPROBE_LOG(level, tag, ...)                                  \
  do {                                                               \
    if (::vprobe::sim::Log::enabled(level)) {                        \
      ::vprobe::sim::Log::write(level, tag, __VA_ARGS__);            \
    }                                                                \
  } while (0)

#define VPROBE_DEBUG(tag, ...) \
  VPROBE_LOG(::vprobe::sim::LogLevel::kDebug, tag, __VA_ARGS__)
#define VPROBE_INFO(tag, ...) \
  VPROBE_LOG(::vprobe::sim::LogLevel::kInfo, tag, __VA_ARGS__)
#define VPROBE_WARN(tag, ...) \
  VPROBE_LOG(::vprobe::sim::LogLevel::kWarn, tag, __VA_ARGS__)

}  // namespace vprobe::sim
