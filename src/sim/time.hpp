// Simulated-time representation for the vProbe discrete-event simulator.
//
// Simulation time is a signed 64-bit count of nanoseconds wrapped in a small
// value type so that durations, rates and wall-clock seconds cannot be mixed
// up silently.  2^63 ns is ~292 years of simulated time, far beyond any
// experiment in this repository.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace vprobe::sim {

/// A point in simulated time (or a duration; the engine does not distinguish).
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors.  Prefer these over the raw-ns constructor.
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }

  /// Fractional seconds -> Time, rounding to the nearest nanosecond.
  static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  constexpr Time& operator+=(Time other) { ns_ += other.ns_; return *this; }
  constexpr Time& operator-=(Time other) { ns_ -= other.ns_; return *this; }

  friend constexpr auto operator<=>(Time, Time) = default;

  /// Scale a duration by a dimensionless factor (used by the cost model when
  /// stretching execution time by slowdown ratios).
  constexpr Time scaled(double factor) const {
    return Time{static_cast<std::int64_t>(static_cast<double>(ns_) * factor + 0.5)};
  }

  /// Human-readable rendering with an adaptive unit, e.g. "12.5ms".
  std::string str() const;

 private:
  explicit constexpr Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

inline std::string Time::str() const {
  const auto abs_ns = ns_ < 0 ? -ns_ : ns_;
  char buf[48];
  if (abs_ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds());
  } else if (abs_ns >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_millis());
  } else if (abs_ns >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", to_micros());
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace vprobe::sim
