// Discrete-event simulation engine.
//
// The engine owns the simulated clock and an ordered event queue.  Events
// scheduled at equal times fire in scheduling order (FIFO by sequence
// number), which keeps runs fully deterministic.  Events may be cancelled
// through the handle returned by schedule().
//
// The hot path is allocation-free in steady state (see docs/ENGINE.md):
//
//  * Event payloads (the callback plus its captures) live in a slab of
//    chunk-allocated slots recycled through a free list; slot addresses are
//    stable for the engine's lifetime, so a periodic timer's callback can
//    run in place while other events are scheduled.
//  * The priority queue is an in-house binary heap of 24-byte plain entries
//    {when, seq, slot} over a contiguous vector — pops move integers, never
//    closures.
//  * Handles are {slot index, generation} values; a freed slot bumps its
//    generation so stale handles see pending() == false and cancel() as a
//    no-op.  No shared_ptr control blocks.
//  * Periodic timers are first-class: the slot is re-armed in place after
//    each firing (fresh sequence number, same callback), with no trampoline
//    lambda churn.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/callback.hpp"
#include "sim/log.hpp"
#include "sim/time.hpp"

namespace vprobe::sim {

class Engine;

/// Cancellation handle for a scheduled event.  Copyable; all copies refer to
/// the same underlying event.  A default-constructed handle refers to
/// nothing.  A handle is a non-owning {engine, slot, generation} triple: it
/// must not be used after its engine is destroyed (holders in this codebase
/// are all owned by, or die before, the object that owns the engine).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event (or, for a periodic timer, the whole chain) from
  /// firing again.  Safe to call more than once, after the event has fired,
  /// or on an empty handle.
  void cancel();

  /// True while the event can still fire: scheduled and not cancelled.  For
  /// a periodic timer this stays true across firings until the chain is
  /// cancelled (including while its own callback runs).
  bool pending() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint32_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}

  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The simulation engine: a clock plus an ordered event queue.
class Engine {
 public:
  /// Invariant-checker hook: notified immediately before each event fires.
  /// The call site only exists when the build defines VPROBE_CHECKS; an
  /// attached observer must outlive the engine or be detached first.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void on_event(Time when, std::uint64_t seq) = 0;
  };

  Engine() { log_.bind_clock(this); }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Attach an event observer (nullptr detaches).  Non-owning.
  void set_observer(Observer* observer) { observer_ = observer; }
  Observer* observer() const { return observer_; }

  /// Current simulated time.
  Time now() const { return now_; }

  /// This engine's log sink; messages carry this engine's simulated time.
  LogContext& log() { return log_; }
  const LogContext& log() const { return log_; }

  /// Schedule `fn` to run at absolute time `when` (must be >= now()).
  /// Templated so the callable is constructed directly inside its pooled
  /// slot — no temporary, no type-erased relocation on the hot path.
  template <typename F>
  EventHandle schedule_at(Time when, F&& fn) {
    if (when < now_) {
      throw std::invalid_argument("Engine::schedule_at: time is in the past");
    }
    return arm(when, Time::zero(), std::forward<F>(fn));
  }

  /// Schedule `fn` to run `delay` after now (delay must be >= 0).
  template <typename F>
  EventHandle schedule(Time delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` to run every `period`, starting at now + `period`.
  /// Returns a handle that cancels the *entire* periodic chain.
  template <typename F>
  EventHandle schedule_periodic(Time period, F&& fn) {
    return schedule_periodic_at(now_ + period, period, std::forward<F>(fn));
  }

  /// Periodic chain with an explicit first firing time (>= now()); later
  /// firings follow every `period`.  Used for phase-staggered timers like
  /// the hypervisor's per-PCPU ticks.
  template <typename F>
  EventHandle schedule_periodic_at(Time first, Time period, F&& fn) {
    if (period <= Time::zero()) {
      throw std::invalid_argument(
          "Engine::schedule_periodic: period must be positive");
    }
    if (first < now_) {
      throw std::invalid_argument(
          "Engine::schedule_periodic_at: first firing is in the past");
    }
    return arm(first, period, std::forward<F>(fn));
  }

  /// Run events until the queue empties or the clock would pass `deadline`.
  /// Events exactly at `deadline` do fire.  Returns the number of events run.
  std::size_t run_until(Time deadline);

  /// Run events strictly before `deadline`, then advance the clock to
  /// exactly `deadline`; events at `deadline` stay queued.  This is the
  /// PDES window primitive (docs/PDES.md): host shards drain everything
  /// below the next coupling point while the coupling event itself fires
  /// on the control engine first.  Returns the number of events run.
  std::size_t run_before(Time deadline);

  /// Earliest pending event's time, skipping (and lazily freeing)
  /// cancelled entries; Time::max() when the queue is empty.  The PDES
  /// synchronizer sizes each conservative window with this.
  Time next_event_time();

  /// Advance the clock to `deadline` without firing anything.  The caller
  /// guarantees no pending event lies strictly before `deadline` (asserted
  /// in debug builds) — this is the PDES idle-shard handoff: the batched
  /// synchronizer advances a skipped shard's clock in O(1) from the control
  /// thread instead of paying a pool barrier for a no-op run_before
  /// (docs/PDES.md).  No-op when the clock is already at `deadline`.
  void advance_to(Time deadline);

  /// Monotone count of arm operations: every schedule_* call and every
  /// periodic re-arm draws a sequence number from this counter.  Arming is
  /// the only operation that can *lower* next_event_time() (firing and
  /// cancelling only raise it), so an unchanged arm_count() certifies that
  /// a cached horizon can only have become stale-low — a harmless no-op
  /// dispatch — never stale-high.  The PDES horizon cache keys on this.
  std::uint64_t arm_count() const { return next_seq_; }

  /// Run until the queue is empty (use with care: periodic timers never end;
  /// `max_events` is a runaway backstop).
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Drop every pending event (used by test teardown).  Safe to call from
  /// inside a callback; a periodic timer whose callback is executing is
  /// cancelled rather than freed out from under itself.
  void clear();

  /// Number of events currently queued (including cancelled-but-unpopped).
  std::size_t queued() const { return heap_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Event slots ever allocated (slab capacity).  Stays flat in steady
  /// state — the recycling regression tests pin this.
  std::size_t slab_slots() const { return chunks_.size() * kChunkSize; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNil = UINT32_MAX;
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // slots/chunk
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  /// One pooled event.  `gen` counts reuses of this slot; handles carry the
  /// generation they were minted with, so a recycled slot invalidates every
  /// stale handle.  `period > 0` marks a periodic chain.
  struct Slot {
    enum class State : std::uint8_t { kFree, kQueued, kFiring };

    Callback fn;
    Time period = Time::zero();
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNil;
    State state = State::kFree;
    bool cancelled = false;
  };

  /// Heap entries are small PODs ordered by (when, seq); the closure stays
  /// in its slot, so heap maintenance never copies or moves a callback.
  struct HeapEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  void grow_slab();

  /// Shared tail of every schedule_* entry point.
  template <typename F>
  EventHandle arm(Time when, Time period, F&& fn) {
    const std::uint32_t idx = alloc_slot();
    Slot& s = slot(idx);
    s.fn.emplace(std::forward<F>(fn));
    s.period = period;
    heap_push(HeapEntry{when, next_seq_++, idx});
    return EventHandle{this, idx, s.gen};
  }

  void heap_push(HeapEntry e);
  void heap_pop();

  /// Earliest non-cancelled entry, lazily freeing cancelled ones; nullptr if
  /// the queue is empty.  The pointer is invalidated by the next heap op.
  const HeapEntry* live_top();

  bool pop_one();  // fire the earliest event; false if queue empty

  void cancel(std::uint32_t idx, std::uint32_t gen);
  bool is_pending(std::uint32_t idx, std::uint32_t gen) const;

  LogContext log_;
  Observer* observer_ = nullptr;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t firing_slot_ = kNil;  ///< periodic slot running its callback
};

}  // namespace vprobe::sim
