// Discrete-event simulation engine.
//
// The engine owns the simulated clock and a priority queue of events.  Events
// scheduled at equal times fire in scheduling order (FIFO by sequence
// number), which keeps runs fully deterministic.  Events may be cancelled
// through the handle returned by schedule().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/log.hpp"
#include "sim/time.hpp"

namespace vprobe::sim {

class Engine;

/// Cancellation handle for a scheduled event.  Copyable; all copies refer to
/// the same underlying event.  A default-constructed handle refers to nothing.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing.  Safe to call more than once, after the
  /// event has fired, or on an empty handle.
  void cancel();

  /// True if the event is still pending (scheduled, not cancelled, not fired).
  bool pending() const;

 private:
  friend class Engine;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// The simulation engine: a clock plus an ordered event queue.
class Engine {
 public:
  /// Invariant-checker hook: notified immediately before each event fires.
  /// The call site only exists when the build defines VPROBE_CHECKS; an
  /// attached observer must outlive the engine or be detached first.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void on_event(Time when, std::uint64_t seq) = 0;
  };

  Engine() { log_.bind_clock(this); }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Attach an event observer (nullptr detaches).  Non-owning.
  void set_observer(Observer* observer) { observer_ = observer; }
  Observer* observer() const { return observer_; }

  /// Current simulated time.
  Time now() const { return now_; }

  /// This engine's log sink; messages carry this engine's simulated time.
  LogContext& log() { return log_; }
  const LogContext& log() const { return log_; }

  /// Schedule `fn` to run at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Time when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now (delay must be >= 0).
  EventHandle schedule(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` to run every `period`, starting at now + `period`.
  /// Returns a handle that cancels the *entire* periodic chain.
  EventHandle schedule_periodic(Time period, std::function<void()> fn);

  /// Run events until the queue empties or the clock would pass `deadline`.
  /// Events exactly at `deadline` do fire.  Returns the number of events run.
  std::size_t run_until(Time deadline);

  /// Run until the queue is empty (use with care: periodic timers never end;
  /// `max_events` is a runaway backstop).
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Drop every pending event (used by test teardown).
  void clear();

  /// Number of events currently queued (including cancelled-but-unpopped).
  std::size_t queued() const { return queue_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Item {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_one();  // fire the earliest event; false if queue empty

  LogContext log_;
  Observer* observer_ = nullptr;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

}  // namespace vprobe::sim
