#include "stats/aggregate.hpp"

namespace vprobe::stats {

void MetricsAccumulator::add(const RunMetrics& m) {
  std::lock_guard<std::mutex> lock(mu_);
  ++n_;
  if (n_ == 1) {
    acc_ = m;
    return;
  }
  acc_.completed = acc_.completed && m.completed;
  for (const auto& [name, t] : m.app_runtime_s) acc_.app_runtime_s[name] += t;
  acc_.avg_runtime_s += m.avg_runtime_s;
  acc_.total_mem_accesses += m.total_mem_accesses;
  acc_.remote_mem_accesses += m.remote_mem_accesses;
  acc_.throughput_rps += m.throughput_rps;
  // Latency: merge the underlying distributions, never average percentiles
  // (the mean of two p99s is not the p99 of the pooled samples).  The merge
  // is an element-wise integer bucket add, so it is order-insensitive —
  // stronger than the index-order contract the float sums above need.
  acc_.latency.merge(m.latency);
  acc_.slo_violations += m.slo_violations;
  if (acc_.slo_threshold_s == 0.0) acc_.slo_threshold_s = m.slo_threshold_s;
  // Arrival-path counters total over the pooled runs, like slo_violations.
  acc_.arrival_events += m.arrival_events;
  acc_.arrivals_coalesced += m.arrivals_coalesced;
  acc_.overhead_fraction += m.overhead_fraction;
  acc_.migrations += m.migrations;
  acc_.cross_node_migrations += m.cross_node_migrations;
  acc_.sim_seconds += m.sim_seconds;
}

RunMetrics MetricsAccumulator::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (n_ <= 1) return acc_;
  RunMetrics out = acc_;
  const double n = static_cast<double>(n_);
  for (auto& [name, t] : out.app_runtime_s) t /= n;
  out.avg_runtime_s /= n;
  out.total_mem_accesses /= n;
  out.remote_mem_accesses /= n;
  out.throughput_rps /= n;
  // out.latency is the merged distribution: percentiles recomputed on it
  // are already the pooled-sample statistics, and slo_violations stays the
  // total count over the pooled requests (the violation *fraction* is what
  // normalises).  Nothing to divide here.
  out.overhead_fraction /= n;
  out.migrations =
      static_cast<std::uint64_t>(static_cast<double>(out.migrations) / n);
  out.cross_node_migrations = static_cast<std::uint64_t>(
      static_cast<double>(out.cross_node_migrations) / n);
  out.sim_seconds /= n;
  return out;
}

std::size_t MetricsAccumulator::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return n_;
}

}  // namespace vprobe::stats
