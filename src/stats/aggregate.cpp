#include "stats/aggregate.hpp"

namespace vprobe::stats {

void MetricsAccumulator::add(const RunMetrics& m) {
  std::lock_guard<std::mutex> lock(mu_);
  ++n_;
  if (n_ == 1) {
    acc_ = m;
    return;
  }
  acc_.completed = acc_.completed && m.completed;
  for (const auto& [name, t] : m.app_runtime_s) acc_.app_runtime_s[name] += t;
  acc_.avg_runtime_s += m.avg_runtime_s;
  acc_.total_mem_accesses += m.total_mem_accesses;
  acc_.remote_mem_accesses += m.remote_mem_accesses;
  acc_.throughput_rps += m.throughput_rps;
  acc_.latency_p50_s += m.latency_p50_s;
  acc_.latency_p99_s += m.latency_p99_s;
  acc_.overhead_fraction += m.overhead_fraction;
  acc_.migrations += m.migrations;
  acc_.cross_node_migrations += m.cross_node_migrations;
  acc_.sim_seconds += m.sim_seconds;
}

RunMetrics MetricsAccumulator::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (n_ <= 1) return acc_;
  RunMetrics out = acc_;
  const double n = static_cast<double>(n_);
  for (auto& [name, t] : out.app_runtime_s) t /= n;
  out.avg_runtime_s /= n;
  out.total_mem_accesses /= n;
  out.remote_mem_accesses /= n;
  out.throughput_rps /= n;
  out.latency_p50_s /= n;
  out.latency_p99_s /= n;
  out.overhead_fraction /= n;
  out.migrations =
      static_cast<std::uint64_t>(static_cast<double>(out.migrations) / n);
  out.cross_node_migrations = static_cast<std::uint64_t>(
      static_cast<double>(out.cross_node_migrations) / n);
  out.sim_seconds /= n;
  return out;
}

std::size_t MetricsAccumulator::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return n_;
}

}  // namespace vprobe::stats
