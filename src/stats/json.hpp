// Minimal streaming JSON writer + RunMetrics serialisation, so bench
// results can feed external tooling without a CSV-parsing step.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "stats/metrics.hpp"

namespace vprobe::stats {

/// Streaming JSON writer with explicit scopes.  The writer tracks comma
/// placement; callers must close every scope they open (checked in
/// debug builds via depth accounting on destruction).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  ~JsonWriter() = default;
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member (only valid inside an object).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value.
  template <typename T>
  JsonWriter& member(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  static std::string escape(const std::string& raw);

  int depth() const { return depth_; }

 private:
  void pre_value();

  std::ostream& out_;
  std::vector<bool> needs_comma_{};
  int depth_ = 0;
};

/// Serialise a RunMetrics into a self-contained JSON object.
std::string to_json(const RunMetrics& metrics);

}  // namespace vprobe::stats
