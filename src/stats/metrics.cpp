#include "stats/metrics.hpp"

#include <cstdio>

#include "stats/csv.hpp"

namespace vprobe::stats {

void RunMetrics::finalize() {
  if (app_runtime_s.empty()) return;
  double total = 0.0;
  for (const auto& [name, t] : app_runtime_s) total += t;
  avg_runtime_s = total / static_cast<double>(app_runtime_s.size());
}

double normalized(double value, double baseline) {
  if (baseline == 0.0) return 0.0;
  return value / baseline;
}

std::string hex_digest(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

void write_host_csv(const std::string& path, const RunMetrics& metrics) {
  if (!metrics.is_cluster_run()) return;
  CsvWriter csv(path, {"host", "machine", "domains", "vcpus", "busy_s",
                       "migrations", "cross_node_migrations", "trace_records",
                       "trace_digest", "requests", "latency_p50_s",
                       "latency_p99_s", "latency_p999_s", "slo_violations"});
  for (const HostMetrics& h : metrics.hosts) {
    csv.add_row({h.name, h.machine, std::to_string(h.domains),
                 std::to_string(h.vcpus), std::to_string(h.busy_s),
                 std::to_string(h.migrations),
                 std::to_string(h.cross_node_migrations),
                 std::to_string(h.trace_records), hex_digest(h.trace_digest),
                 std::to_string(h.latency.count()),
                 std::to_string(h.latency.p50_s()),
                 std::to_string(h.latency.p99_s()),
                 std::to_string(h.latency.p999_s()),
                 std::to_string(h.slo_violations)});
  }
}

}  // namespace vprobe::stats
