#include "stats/metrics.hpp"

namespace vprobe::stats {

void RunMetrics::finalize() {
  if (app_runtime_s.empty()) return;
  double total = 0.0;
  for (const auto& [name, t] : app_runtime_s) total += t;
  avg_runtime_s = total / static_cast<double>(app_runtime_s.size());
}

double normalized(double value, double baseline) {
  if (baseline == 0.0) return 0.0;
  return value / baseline;
}

}  // namespace vprobe::stats
