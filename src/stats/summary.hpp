// Descriptive statistics over a sample vector.
#pragma once

#include <cstddef>
#include <vector>

namespace vprobe::stats {

class Summary {
 public:
  Summary() = default;

  void add(double v) { samples_.push_back(v); dirty_ = true; }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;  ///< sample standard deviation (n-1)
  double min() const;
  double max() const;
  double sum() const;

  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

}  // namespace vprobe::stats
