#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace vprobe::stats {

namespace {

std::uint64_t to_ns(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double scaled = seconds * 1e9;
  if (scaled >= static_cast<double>(LatencyHistogram::kMaxValueNs)) {
    return LatencyHistogram::kMaxValueNs;
  }
  return static_cast<std::uint64_t>(std::llround(scaled));
}

}  // namespace

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < kSubBucketCount) return static_cast<std::size_t>(ns);
  const int exp = 63 - std::countl_zero(ns);  // >= kSubBucketBits
  const int shift = exp - (kSubBucketBits - 1);
  const std::size_t octave = static_cast<std::size_t>(exp - kSubBucketBits);
  return static_cast<std::size_t>(kSubBucketCount) +
         octave * (kSubBucketCount / 2) +
         static_cast<std::size_t>((ns >> shift) - kSubBucketCount / 2);
}

double LatencyHistogram::bucket_mid_s(std::size_t index) {
  if (index < kSubBucketCount) return static_cast<double>(index) * 1e-9;
  const std::size_t rel = index - kSubBucketCount;
  const std::size_t octave = rel / (kSubBucketCount / 2);
  const std::uint64_t sub = rel % (kSubBucketCount / 2) + kSubBucketCount / 2;
  const int shift = static_cast<int>(octave) + 1;
  const std::uint64_t lower = sub << shift;
  const std::uint64_t width = 1ull << shift;
  return static_cast<double>(lower + width / 2) * 1e-9;
}

void LatencyHistogram::record(double seconds, std::uint64_t weight) {
  if (weight == 0) return;
  if (counts_.empty()) counts_.assign(kNumBuckets, 0);
  const double s = seconds > 0.0 ? seconds : 0.0;
  counts_[bucket_index(to_ns(s))] += weight;
  if (count_ == 0 || s < min_) min_ = s;
  if (count_ == 0 || s > max_) max_ = s;
  sum_ += s * static_cast<double>(weight);
  count_ += weight;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const double exact = (p / 100.0) * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) {
      // Clamp the midpoint into the observed range so tails never report
      // outside [min, max].
      return std::clamp(bucket_mid_s(i), min_, max_);
    }
  }
  return max_;
}

std::uint64_t LatencyHistogram::count_above(double threshold_s) const {
  if (count_ == 0 || counts_.empty()) return 0;
  const std::size_t cut = bucket_index(to_ns(threshold_s));
  std::uint64_t n = 0;
  for (std::size_t i = cut + 1; i < kNumBuckets; ++i) n += counts_[i];
  return n;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kNumBuckets, 0);
  if (!other.counts_.empty()) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

bool LatencyHistogram::operator==(const LatencyHistogram& other) const {
  if (count_ != other.count_) return false;
  if (count_ != 0 &&
      (min_ != other.min_ || max_ != other.max_ || sum_ != other.sum_)) {
    return false;
  }
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (bucket_count(i) != other.bucket_count(i)) return false;
  }
  return true;
}

std::uint64_t LatencyHistogram::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  mix(count_);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    mix(static_cast<std::uint64_t>(i));
    mix(c);
  }
  return h;
}

}  // namespace vprobe::stats
