// Fixed-width console table printer for bench output (the textual stand-in
// for the paper's figures).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vprobe::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append a row; cells beyond the header count are dropped.
  void add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
  }

  /// Convenience: first cell is a label, the rest are numbers.
  void add_row(const std::string& label, const std::vector<double>& values,
               const char* fmt = "%.3f");

  /// Render with column auto-sizing.
  std::string str() const;
  void print(std::FILE* out = stdout) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string fmt(double v, const char* spec = "%.3f");

}  // namespace vprobe::stats
