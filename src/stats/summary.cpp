#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vprobe::stats {

double Summary::sum() const {
  double s = 0.0;
  for (double v : samples_) s += v;
  return s;
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean: no samples");
  return sum() / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min: no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max: no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

void Summary::ensure_sorted() const {
  if (!dirty_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  dirty_ = false;
}

double Summary::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Summary::percentile: no samples");
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double pos = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace vprobe::stats
