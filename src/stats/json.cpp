#include "stats/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace vprobe::stats {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ << '{';
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ << '}';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ << '[';
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ << ']';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    // The upcoming value must not add another comma.
    needs_comma_.back() = false;
  }
  out_ << '"' << escape(name) << "\":";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ << "null";
  return *this;
}

std::string to_json(const RunMetrics& m) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object()
      .member("scheduler", m.scheduler)
      .member("workload", m.workload)
      .member("avg_runtime_s", m.avg_runtime_s)
      .member("total_mem_accesses", m.total_mem_accesses)
      .member("remote_mem_accesses", m.remote_mem_accesses)
      .member("remote_access_ratio", m.remote_access_ratio())
      .member("throughput_rps", m.throughput_rps)
      .member("latency_p50_s", m.latency_p50_s())
      .member("latency_p99_s", m.latency_p99_s())
      .member("latency_p999_s", m.latency_p999_s())
      .member("latency_max_s", m.latency_max_s())
      .member("requests", m.latency.count())
      .member("slo_threshold_s", m.slo_threshold_s)
      .member("slo_violations", m.slo_violations)
      .member("slo_violation_fraction", m.slo_violation_fraction())
      .member("arrival_events", m.arrival_events)
      .member("arrivals_coalesced", m.arrivals_coalesced)
      .member("overhead_fraction", m.overhead_fraction)
      .member("migrations", static_cast<std::uint64_t>(m.migrations))
      .member("cross_node_migrations",
              static_cast<std::uint64_t>(m.cross_node_migrations))
      .member("sim_seconds", m.sim_seconds)
      .member("completed", m.completed);
  json.key("app_runtime_s").begin_object();
  for (const auto& [name, t] : m.app_runtime_s) json.member(name, t);
  json.end_object();
  // Cluster keys exist only for multi-machine runs, so single-machine JSON
  // stays byte-identical to the pre-cluster format.
  if (m.is_cluster_run()) {
    json.key("hosts").begin_array();
    for (const HostMetrics& h : m.hosts) {
      json.begin_object()
          .member("name", h.name)
          .member("machine", h.machine)
          .member("domains", static_cast<std::int64_t>(h.domains))
          .member("vcpus", static_cast<std::int64_t>(h.vcpus))
          .member("busy_s", h.busy_s)
          .member("migrations", h.migrations)
          .member("cross_node_migrations", h.cross_node_migrations)
          .member("trace_records", h.trace_records)
          .member("trace_digest", hex_digest(h.trace_digest))
          .member("requests", h.latency.count())
          .member("latency_p50_s", h.latency.p50_s())
          .member("latency_p99_s", h.latency.p99_s())
          .member("latency_p999_s", h.latency.p999_s())
          .member("slo_violations", h.slo_violations);
      json.end_object();
    }
    json.end_array();
    json.key("cluster").begin_object();
    json.member("num_hosts", static_cast<std::int64_t>(m.hosts.size()))
        .member("admitted", m.cluster.admitted)
        .member("rejected", m.cluster.rejected)
        .member("migrations_started", m.cluster.migrations_started)
        .member("migrations_completed", m.cluster.migrations_completed)
        .member("migrations_rejected", m.cluster.migrations_rejected)
        .member("precopy_rounds", m.cluster.precopy_rounds)
        .member("migrated_bytes", m.cluster.migrated_bytes)
        .member("balance_actions", m.cluster.balance_actions)
        .member("fleet_digest", hex_digest(m.cluster.fleet_digest))
        .member("sync_windows", m.cluster.sync_windows)
        .member("sync_windows_coalesced", m.cluster.sync_windows_coalesced)
        .member("sync_control_events", m.cluster.sync_control_events)
        .member("sync_barriers", m.cluster.sync_barriers)
        .member("sync_shard_dispatches", m.cluster.sync_shard_dispatches)
        .member("sync_shard_skips", m.cluster.sync_shard_skips)
        .member("pool_wakeups", m.cluster.pool_wakeups)
        .member("pool_spin_grabs", m.cluster.pool_spin_grabs)
        .member("pool_parks", m.cluster.pool_parks);
    json.end_object();
  }
  json.end_object();
  return os.str();
}

}  // namespace vprobe::stats
