// Aggregation of RunMetrics across repeated runs (seed averaging).
//
// The accumulator is internally synchronised so concurrent workers may
// add() into a shared instance.  Note the determinism contract, though:
// floating-point accumulation is order-sensitive, so callers that need
// bit-identical means regardless of worker count (the RunPlan executor's
// guarantee) must add() results in a fixed order — in practice, collect
// per-run results into indexed slots first and fold them in index order
// after the parallel phase.
#pragma once

#include <cstddef>
#include <mutex>

#include "stats/metrics.hpp"

namespace vprobe::stats {

class MetricsAccumulator {
 public:
  /// Fold one run in.  The first run contributes the identifying fields
  /// (scheduler, workload); `completed` is AND-ed across runs.
  void add(const RunMetrics& m);

  /// Arithmetic mean of everything added so far.  With a single run added,
  /// returns that run exactly (bit-identical, no divide).
  RunMetrics mean() const;

  std::size_t count() const;

 private:
  mutable std::mutex mu_;
  std::size_t n_ = 0;
  RunMetrics acc_;  // running sums; identity fields from the first add()
};

}  // namespace vprobe::stats
