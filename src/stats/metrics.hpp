// Per-run experiment metrics: what the paper's figures plot.
#pragma once

#include <map>
#include <string>

#include "sim/time.hpp"

namespace vprobe::stats {

struct RunMetrics {
  std::string scheduler;
  std::string workload;

  /// Per-application wall runtimes (the Figure 4/5 primary metric).
  std::map<std::string, double> app_runtime_s;

  /// Mean of app_runtime_s (set by finalize()).
  double avg_runtime_s = 0.0;

  /// Measured domain's memory-access counters (Figures 4-7 panels b/c).
  double total_mem_accesses = 0.0;
  double remote_mem_accesses = 0.0;

  /// Server throughput, requests/s (Figure 7a; 0 for batch workloads).
  double throughput_rps = 0.0;

  /// Request-latency percentiles in seconds (server workloads; 0 for batch).
  /// Not a paper metric — reported because any load tester would.
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;

  /// Hypervisor "overhead time" fraction (Table III).
  double overhead_fraction = 0.0;

  /// Scheduler churn.
  std::uint64_t migrations = 0;
  std::uint64_t cross_node_migrations = 0;

  /// Wall time the measurement took inside the simulation.
  double sim_seconds = 0.0;
  /// True when every tracked app finished before the horizon.
  bool completed = false;

  double remote_access_ratio() const {
    return total_mem_accesses > 0 ? remote_mem_accesses / total_mem_accesses : 0.0;
  }

  /// Compute avg_runtime_s from app_runtime_s.
  void finalize();
};

/// value / baseline, guarding division by zero.
double normalized(double value, double baseline);

}  // namespace vprobe::stats
