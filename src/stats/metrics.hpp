// Per-run experiment metrics: what the paper's figures plot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace vprobe::stats {

/// Per-host slice of a multi-machine (cluster) run.
struct HostMetrics {
  std::string name;
  std::string machine;  ///< machine-config label ("xeon_e5620", ...)
  int domains = 0;      ///< domains live at the end of the run
  int vcpus = 0;        ///< VCPUs live at the end of the run
  double busy_s = 0.0;  ///< guest busy time accumulated on the host
  std::uint64_t migrations = 0;  ///< intra-host VCPU migrations
  std::uint64_t cross_node_migrations = 0;
  std::uint64_t trace_records = 0;
  std::uint64_t trace_digest = 0;  ///< running FNV-1a trace digest
  /// Serving stats (open-loop runs only; empty/zero otherwise).
  LatencyHistogram latency;
  std::uint64_t slo_violations = 0;
};

/// Control-plane counters for a cluster run.
struct ClusterMetrics {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_rejected = 0;
  std::uint64_t precopy_rounds = 0;
  double migrated_bytes = 0.0;
  std::uint64_t balance_actions = 0;
  std::uint64_t fleet_digest = 0;
  /// PDES synchronizer counters (cluster::SyncStats): all zero for serial
  /// runs; batch-on vs batch-off runs differ here while every digest above
  /// stays identical — the counters measure barriers not paid, not results.
  std::uint64_t sync_windows = 0;
  std::uint64_t sync_windows_coalesced = 0;
  std::uint64_t sync_control_events = 0;
  std::uint64_t sync_barriers = 0;
  std::uint64_t sync_shard_dispatches = 0;
  std::uint64_t sync_shard_skips = 0;
  std::uint64_t pool_wakeups = 0;
  std::uint64_t pool_spin_grabs = 0;
  std::uint64_t pool_parks = 0;
};

struct RunMetrics {
  std::string scheduler;
  std::string workload;

  /// Per-application wall runtimes (the Figure 4/5 primary metric).
  std::map<std::string, double> app_runtime_s;

  /// Mean of app_runtime_s (set by finalize()).
  double avg_runtime_s = 0.0;

  /// Measured domain's memory-access counters (Figures 4-7 panels b/c).
  double total_mem_accesses = 0.0;
  double remote_mem_accesses = 0.0;

  /// Server throughput, requests/s (Figure 7a; 0 for batch workloads).
  double throughput_rps = 0.0;

  /// Per-request sojourn-time distribution (server workloads; empty for
  /// batch).  Replaces the old scalar latency_p50_s/latency_p99_s fields:
  /// percentiles are now derived from the histogram, so aggregating runs
  /// merges distributions instead of (incorrectly) averaging percentiles.
  LatencyHistogram latency;

  /// SLO accounting: requests whose sojourn time exceeded slo_threshold_s,
  /// counted exactly per request at record time (not from buckets).
  /// threshold <= 0 disables counting.
  double slo_threshold_s = 0.0;
  std::uint64_t slo_violations = 0;

  /// Open-loop arrival-path accounting (docs/SERVING.md): engine events
  /// the arrival path paid (client arrival/boundary events plus server
  /// materialization events) and requests delivered without an event of
  /// their own.  Eager runs coalesce nothing; every digest stays
  /// identical while these counters measure the events not paid.
  std::uint64_t arrival_events = 0;
  std::uint64_t arrivals_coalesced = 0;

  double latency_p50_s() const { return latency.p50_s(); }
  double latency_p99_s() const { return latency.p99_s(); }
  double latency_p999_s() const { return latency.p999_s(); }
  double latency_max_s() const { return latency.max_s(); }
  double slo_violation_fraction() const {
    return latency.count()
               ? static_cast<double>(slo_violations) /
                     static_cast<double>(latency.count())
               : 0.0;
  }

  /// Hypervisor "overhead time" fraction (Table III).
  double overhead_fraction = 0.0;

  /// Scheduler churn.
  std::uint64_t migrations = 0;
  std::uint64_t cross_node_migrations = 0;

  /// Wall time the measurement took inside the simulation.
  double sim_seconds = 0.0;
  /// True when every tracked app finished before the horizon.
  bool completed = false;

  /// Multi-machine runs only; empty for single-machine runs (and then the
  /// JSON/CSV output is byte-identical to the pre-cluster format).
  std::vector<HostMetrics> hosts;
  ClusterMetrics cluster;

  bool is_cluster_run() const { return !hosts.empty(); }

  double remote_access_ratio() const {
    return total_mem_accesses > 0 ? remote_mem_accesses / total_mem_accesses : 0.0;
  }

  /// Compute avg_runtime_s from app_runtime_s.
  void finalize();
};

/// value / baseline, guarding division by zero.
double normalized(double value, double baseline);

/// 16-digit lowercase hex rendering of a 64-bit trace digest — the format
/// tests/golden/traces.txt uses, so digests compare textually everywhere.
std::string hex_digest(std::uint64_t digest);

/// Per-host CSV dump of a cluster run (one row per host), matching the
/// JSON "hosts" array.  Throws std::runtime_error when the file cannot be
/// opened; no-op for single-machine metrics.
void write_host_csv(const std::string& path, const RunMetrics& metrics);

}  // namespace vprobe::stats
