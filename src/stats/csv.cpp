#include "stats/csv.hpp"

#include <stdexcept>

#include "stats/table.hpp"

namespace vprobe::stats {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : out_(path), columns_(headers.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  add_row(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i) out_ << ',';
    if (i < cells.size()) out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::string& label,
                        const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, "%.6g"));
  add_row(cells);
}

}  // namespace vprobe::stats
