#include "stats/table.hpp"

#include <algorithm>
#include <sstream>

namespace vprobe::stats {

std::string fmt(double v, const char* spec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    const char* spec) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, spec));
  add_row(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "" : "  ");
      os << cell;
      os << std::string(widths[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::FILE* out) const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

}  // namespace vprobe::stats
