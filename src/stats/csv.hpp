// Minimal CSV writer: benches can optionally dump their series for external
// plotting alongside the console tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace vprobe::stats {

class CsvWriter {
 public:
  /// Opens (truncates) `path`.  Throws std::runtime_error on failure.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::string& label, const std::vector<double>& values);

  /// Escape a cell per RFC 4180 (quotes around separators/quotes/newlines).
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace vprobe::stats
