#pragma once
// Fixed-memory log-bucketed latency histogram (HDR-style).
//
// Values are recorded in integer nanoseconds. Below kSubBucketCount ns the
// buckets are exact (1 ns wide); above that, each power-of-two octave is
// split into kSubBucketCount/2 equal sub-buckets, so the bucket width is
// always <= value / (kSubBucketCount/2). Reporting the bucket midpoint
// bounds the relative quantile error by 1 / kSubBucketCount (= 1/128 with
// the default 7 sub-bucket bits), plus at most 0.5 ns of rounding.
//
// The layout is fixed at compile time (2240 uint64 buckets, ~17.5 KiB when
// materialised), so merging two histograms is an element-wise integer add:
// deterministic, commutative, and associative regardless of merge order.
// Exact min / max / sum / count are tracked alongside the buckets so the
// distribution extremes are reported without bucketing error.
//
// Percentiles use the ceil-rank order statistic: percentile(p) returns the
// value at rank ceil(p/100 * count) (1-based). percentile(0) is the exact
// minimum and percentile(100) the exact maximum.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vprobe::stats {

class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 7;
  static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  static constexpr int kOctaves = 33;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kSubBucketCount) +
      static_cast<std::size_t>(kOctaves) * (kSubBucketCount / 2);
  // Largest representable value: 2^(kSubBucketBits + kOctaves) - 1 ns
  // (about 18 minutes). Larger samples are clamped into the top bucket.
  static constexpr std::uint64_t kMaxValueNs =
      (1ull << (kSubBucketBits + kOctaves)) - 1;

  // Documented bound on the relative error of any reported percentile
  // (excluding the exact 0th/100th), for values above kSubBucketCount ns.
  static constexpr double max_relative_error() {
    return 1.0 / static_cast<double>(kSubBucketCount);
  }

  // Record `weight` observations of `seconds` (negative values clamp to 0).
  void record(double seconds, std::uint64_t weight = 1);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min_s() const { return count_ ? min_ : 0.0; }
  double max_s() const { return count_ ? max_ : 0.0; }
  double sum_s() const { return sum_; }
  double mean_s() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  // Ceil-rank order statistic; 0 on an empty histogram.
  double percentile(double p) const;
  double p50_s() const { return percentile(50.0); }
  double p99_s() const { return percentile(99.0); }
  double p999_s() const { return percentile(99.9); }

  // Count of recorded observations strictly above `threshold_s`, resolved
  // at bucket granularity (exact when the threshold is a bucket boundary).
  std::uint64_t count_above(double threshold_s) const;

  // Element-wise add; commutative and associative, bit-deterministic for
  // the bucket counts and min/max (sum is a float accumulation, which is
  // still bitwise-commutative for a single two-way merge).
  void merge(const LatencyHistogram& other);

  bool operator==(const LatencyHistogram& other) const;
  bool operator!=(const LatencyHistogram& other) const {
    return !(*this == other);
  }

  // FNV-1a over the totals and all non-empty (index, count) pairs.
  std::uint64_t digest() const;

  // Mapping helpers, exposed for tests.
  static std::size_t bucket_index(std::uint64_t ns);
  static double bucket_mid_s(std::size_t index);

 private:
  std::uint64_t bucket_count(std::size_t index) const {
    return counts_.empty() ? 0 : counts_[index];
  }

  // Lazily allocated so an empty histogram (the common RunMetrics case)
  // costs nothing to copy.
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace vprobe::stats
