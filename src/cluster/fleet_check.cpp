#include "cluster/fleet_check.hpp"

#include <stdexcept>

#include "cluster/cluster.hpp"

namespace vprobe::cluster {

FleetCheck::FleetCheck(Cluster& cluster) : cluster_(&cluster) {
  checkers_.reserve(static_cast<std::size_t>(cluster.num_hosts()));
  for (int id = 0; id < cluster.num_hosts(); ++id) {
    auto checker = std::make_unique<check::InvariantChecker>();
    checker->set_scope(cluster.host_name(id));
    // One observer slot per engine: on a serial fleet every host shares
    // one engine and host 0's checker watches event-time monotonicity for
    // all of them; on a sharded (PDES) fleet each host has a private
    // engine shard, so each host's checker observes its own.
    const bool engine_observer =
        id == 0 || &cluster.host_engine(id) != &cluster.host_engine(0);
    checker->attach(cluster.host(id), engine_observer);
    checkers_.push_back(std::move(checker));
  }
  cluster.set_check(this);
}

FleetCheck::~FleetCheck() {
  if (cluster_ != nullptr) cluster_->set_check(nullptr);
  for (auto& checker : checkers_) checker->detach();
}

void FleetCheck::on_transition(Cluster& cluster) {
  // Residency: each admitted VM's name resolves to exactly one domain in
  // the whole fleet, and on the host the control plane records.  This holds
  // even mid-migration — pre-copy leaves the domain on the source, and the
  // cutover event destroys the source incarnation before creating the
  // destination one.
  const auto views = cluster.vms();
  for (const auto& vm : views) {
    int resident_hosts = 0;
    bool on_recorded_host = false;
    for (int id = 0; id < cluster.num_hosts(); ++id) {
      bool found = false;
      for (const auto& dom : cluster.host(id).domains()) {
        if (dom->name() == vm.name) {
          found = true;
          break;
        }
      }
      if (found) {
        ++resident_hosts;
        if (id == vm.host) on_recorded_host = true;
      }
    }
    if (resident_hosts != 1 || !on_recorded_host) {
      report(cluster, "vm '" + vm.name + "' resident on " +
                          std::to_string(resident_hosts) +
                          " hosts (recorded host " + std::to_string(vm.host) +
                          (vm.migrating ? ", migrating to " +
                                              std::to_string(vm.dst_host)
                                        : "") +
                          ")");
    }
  }
  // Reservations: inbound-migration reservations are non-negative
  // everywhere and zero on hosts no in-flight migration targets.
  for (int id = 0; id < cluster.num_hosts(); ++id) {
    const std::int64_t reserved = cluster.reserved_chunks(id);
    bool inbound = false;
    for (const auto& vm : views) {
      if (vm.migrating && vm.dst_host == id) {
        inbound = true;
        break;
      }
    }
    if (reserved < 0 || (!inbound && reserved != 0)) {
      report(cluster, "host " + std::to_string(id) +
                          " reservation out of balance: " +
                          std::to_string(reserved) + " chunks, " +
                          (inbound ? "with" : "no") + " inbound migration");
    }
  }
}

bool FleetCheck::ok() const {
  if (cluster_total_ != 0) return false;
  for (const auto& checker : checkers_) {
    if (!checker->ok()) return false;
  }
  return true;
}

std::vector<check::Violation> FleetCheck::violations() const {
  std::vector<check::Violation> out;
  for (const auto& checker : checkers_) {
    out.insert(out.end(), checker->violations().begin(),
               checker->violations().end());
  }
  out.insert(out.end(), cluster_violations_.begin(), cluster_violations_.end());
  return out;
}

std::uint64_t FleetCheck::total_violations() const {
  std::uint64_t total = cluster_total_;
  for (const auto& checker : checkers_) total += checker->total_violations();
  return total;
}

void FleetCheck::expect_ok() {
  for (auto& checker : checkers_) checker->check_now();
  if (cluster_ != nullptr) on_transition(*cluster_);
  if (ok()) return;
  std::string msg = "fleet invariant violations (" +
                    std::to_string(total_violations()) + " total):";
  std::size_t listed = 0;
  for (const auto& v : violations()) {
    if (listed++ == 8) {
      msg += "\n  ...";
      break;
    }
    msg += "\n  [" + v.when.str() + "] " + v.what;
  }
  throw std::runtime_error(msg);
}

void FleetCheck::report(const Cluster& cluster, std::string what) {
  ++cluster_total_;
  if (cluster_violations_.size() < 64) {
    cluster_violations_.push_back(
        {"[cluster] " + std::move(what), cluster.now()});
  }
}

}  // namespace vprobe::cluster
