#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "cluster/fleet_check.hpp"
#include "trace/digest.hpp"

namespace vprobe::cluster {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return b > 0 ? (a + b - 1) / b : 0;
}

}  // namespace

Cluster::Cluster(Config config, std::span<const HostSpec> hosts,
                 SchedulerFactory scheduler_factory)
    : config_(std::move(config)) {
  if (hosts.empty()) {
    throw std::invalid_argument("Cluster: at least one host is required");
  }
  if (!scheduler_factory) {
    throw std::invalid_argument("Cluster: scheduler factory is required");
  }
  // Resolve the shard count: never more threads than hosts (a shard is a
  // host's event stream), and a single host or sim_threads=1 stays on the
  // serial shared-engine path — the reference semantics every golden
  // digest is pinned against.
  int threads = config_.sim_threads;
  if (threads <= 0) {
    threads = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  threads = std::min(threads, static_cast<int>(hosts.size()));
  if (threads > 1) {
    sim_threads_ = threads;
    shard_engines_.reserve(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      shard_engines_.push_back(std::make_unique<sim::Engine>());
    }
  }
  hosts_.reserve(hosts.size());
  tracers_.reserve(hosts.size());
  for (int id = 0; id < static_cast<int>(hosts.size()); ++id) {
    const HostSpec& spec = hosts[static_cast<std::size_t>(id)];
    hv::Hypervisor::Config host_cfg = config_.host_template;
    host_cfg.machine = spec.machine;
    // Child seed is a pure function of (run seed, host id): host streams do
    // not depend on construction order, and a cluster-of-1 gets exactly the
    // run seed (child_seed(s, 0) == s), matching the single-machine path.
    host_cfg.seed = sim::Rng::child_seed(config_.seed, id);
    host_cfg.host_id = id;
    hosts_.push_back(std::make_unique<hv::Hypervisor>(
        host_cfg, scheduler_factory(id), host_engine(id)));
    host_names_.push_back(spec.name.empty() ? "host" + std::to_string(id)
                                            : spec.name);
    tracers_.push_back(std::make_unique<trace::Tracer>(config_.trace_capacity));
    tracers_.back()->set_host(id);
    hosts_.back()->set_tracer(tracers_.back().get());
  }
  reserved_chunks_.assign(hosts.size(), 0);
}

Cluster::~Cluster() {
  balance_timer_.cancel();
  for (auto& vm : vms_) vm->migration_event.cancel();
  // Drop every pending event before any host dies: cross-host events (and
  // uncancellable zero-delay poke/preempt lambdas) hold references into
  // host state that per-host teardown cannot reach.
  engine_.clear();
  for (auto& shard : shard_engines_) shard->clear();
}

void Cluster::start() {
  for (auto& host : hosts_) host->start();
  if (config_.balance_period > sim::Time::zero()) {
    balance_timer_ = engine_.schedule_periodic(config_.balance_period,
                                               [this] { balance_once(); });
  }
}

std::size_t Cluster::run_until(sim::Time deadline) {
  if (!sharded()) return engine_.run_until(deadline);
  if (pool_ == nullptr) pool_ = std::make_unique<ShardPool>(sim_threads_);
  return config_.window_batch ? run_until_batched(deadline)
                              : run_until_unbatched(deadline);
}

// Batched demand-driven windows.  Same conservative structure as the
// unbatched loop — shards drain strictly below the coupling point, then the
// control engine fires everything at it, so at equal times control events
// precede host events exactly as serial seq order dictates (docs/PDES.md) —
// but the shard pass is demand-driven: a cached per-shard horizon decides
// which shards have work below the coupling point.  Shards without work are
// advanced in O(1) from this thread (mandatory: control callbacks call into
// host code that reads the shard clock and schedules relative events), and
// when *no* shard has work the control event fires with no barrier at all —
// consecutive control events coalesce into one serial burst.  The cache is
// sound because arming is the only operation that lowers a true horizon and
// arming always bumps Engine::arm_count(); firing and cancelling only raise
// it, making a stale entry stale-low — a harmless no-op dispatch.
std::size_t Cluster::run_until_batched(sim::Time deadline) {
  const auto n = static_cast<std::size_t>(num_hosts());
  if (horizons_.size() != n) horizons_.assign(n, ShardHorizon{});
  std::vector<std::size_t> ran(n, 0);
  std::vector<int> busy;
  busy.reserve(n);

  const auto refresh = [this](std::size_t id) {
    sim::Engine& shard = *shard_engines_[id];
    horizons_[id].next = shard.next_event_time();
    horizons_[id].arm_seq = shard.arm_count();
  };
  // Collect shards with events below `bound` into busy; advance the rest to
  // `bound` directly (skip).  Workers are quiescent here, so the refresh is
  // a plain heap-top peek on the caller's thread.
  const auto partition = [&](sim::Time bound, bool inclusive) {
    busy.clear();
    for (std::size_t id = 0; id < n; ++id) {
      if (horizons_[id].arm_seq != shard_engines_[id]->arm_count()) {
        refresh(id);
      }
      const sim::Time next = horizons_[id].next;
      if (inclusive ? next <= bound : next < bound) {
        busy.push_back(static_cast<int>(id));
      } else {
        shard_engines_[id]->advance_to(bound);
        ++sync_.shard_skips;
      }
    }
  };

  for (;;) {
    const sim::Time coupling = engine_.next_event_time();
    if (coupling > deadline) break;
    ++sync_.windows;
    partition(coupling, /*inclusive=*/false);
    if (busy.empty()) {
      // Coalesced window: every shard is already parked at the coupling
      // point, so the control event fires back-to-back with the previous
      // one — no pool barrier, no wakeups.
      ++sync_.windows_coalesced;
    } else {
      ++sync_.barriers;
      sync_.shard_dispatches += busy.size();
      pool_->parallel_for(static_cast<int>(busy.size()), [&](int bi) {
        const auto id = static_cast<std::size_t>(busy[static_cast<std::size_t>(bi)]);
        ran[id] += shard_engines_[id]->run_before(coupling);
        // Each worker re-peeks its own shard's heap top; the pool barrier
        // publishes the write before the control thread reads it.
        refresh(id);
      });
    }
    const std::size_t fired = engine_.run_until(coupling);
    sync_.control_events += fired;
    ran[0] += fired;
  }
  // No control events remain at or before the deadline; finish the busy
  // hosts inclusively so events exactly at `deadline` fire, like the serial
  // run_until contract, and advance the idle ones.
  partition(deadline, /*inclusive=*/true);
  if (!busy.empty()) {
    ++sync_.barriers;
    sync_.shard_dispatches += busy.size();
    pool_->parallel_for(static_cast<int>(busy.size()), [&](int bi) {
      const auto id = static_cast<std::size_t>(busy[static_cast<std::size_t>(bi)]);
      ran[id] += shard_engines_[id]->run_until(deadline);
      refresh(id);
    });
  }
  sync_.control_events += engine_.run_until(deadline);  // clock only; empty
  std::size_t total = 0;
  for (std::size_t c : ran) total += c;
  return total;
}

// The pre-batching loop (--no-window-batch): one full all-shard barrier per
// control event.  Kept as the semantic reference for the differential sweep
// and as the escape hatch; it maintains the same counters so batch-on vs
// batch-off comparisons quantify the saving.
std::size_t Cluster::run_until_unbatched(sim::Time deadline) {
  const int n = num_hosts();
  std::vector<std::size_t> ran(static_cast<std::size_t>(n), 0);
  // Conservative windows: every shard may safely run to the time of the
  // next control-plane event, because host events never touch another
  // host's state and only control events couple hosts.  Shards drain
  // strictly *below* the coupling point, then the control engine fires
  // everything at it (draining any same-time control cascade), so at equal
  // times control events precede host events — the order the serial path
  // produces for every systematic collision (docs/PDES.md).  Worker
  // threads are quiescent whenever control code runs, so control events
  // and callers between run_until() calls see settled host state.
  for (;;) {
    const sim::Time coupling = engine_.next_event_time();
    if (coupling > deadline) break;
    ++sync_.windows;
    ++sync_.barriers;
    sync_.shard_dispatches += static_cast<std::uint64_t>(n);
    pool_->parallel_for(n, [&](int id) {
      ran[static_cast<std::size_t>(id)] +=
          shard_engines_[static_cast<std::size_t>(id)]->run_before(coupling);
    });
    const std::size_t fired = engine_.run_until(coupling);
    sync_.control_events += fired;
    ran[0] += fired;
  }
  // No control events remain at or before the deadline; finish the hosts
  // inclusively so events exactly at `deadline` fire, like the serial
  // run_until contract.
  ++sync_.barriers;
  sync_.shard_dispatches += static_cast<std::uint64_t>(n);
  pool_->parallel_for(n, [&](int id) {
    ran[static_cast<std::size_t>(id)] +=
        shard_engines_[static_cast<std::size_t>(id)]->run_until(deadline);
  });
  sync_.control_events += engine_.run_until(deadline);  // clock only; empty
  std::size_t total = 0;
  for (std::size_t c : ran) total += c;
  return total;
}

SyncStats Cluster::sync_stats() const {
  SyncStats out = sync_;
  if (pool_ != nullptr) {
    const ShardPool::Stats ps = pool_->stats();
    out.pool_wakeups = ps.wakeups;
    out.pool_spin_grabs = ps.spin_grabs;
    out.pool_parks = ps.parks;
  }
  return out;
}

// -- Admission ----------------------------------------------------------------

std::int64_t Cluster::chunks_on(int host_id, std::int64_t mem_bytes) const {
  const auto& machine =
      hosts_.at(static_cast<std::size_t>(host_id))->config().machine;
  return ceil_div(mem_bytes, machine.chunk_bytes);
}

HostSpace Cluster::host_space(int id) const {
  const auto& hv = *hosts_.at(static_cast<std::size_t>(id));
  // memory_manager() is const-agnostic; Cluster logically owns the hosts.
  auto& mm = const_cast<hv::Hypervisor&>(hv).memory_manager();
  HostSpace space;
  space.host = id;
  const int nodes = mm.num_nodes();
  space.free_chunks.reserve(static_cast<std::size_t>(nodes));
  space.capacity_chunks.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    space.free_chunks.push_back(mm.free_chunks(n));
    space.capacity_chunks.push_back(mm.capacity_chunks(n));
  }
  // Subtract in-flight migration reservations greedily from the fullest
  // nodes — conservative for the shape test (a reservation could land
  // anywhere, so assume it eats the best nodes first).
  std::int64_t rem = reserved_chunks_.at(static_cast<std::size_t>(id));
  while (rem > 0) {
    auto it = std::max_element(space.free_chunks.begin(), space.free_chunks.end());
    if (it == space.free_chunks.end() || *it <= 0) break;
    const std::int64_t take = std::min(rem, *it);
    *it -= take;
    rem -= take;
  }
  space.live_vcpus = static_cast<int>(hv.all_vcpus().size());
  for (const auto& vm : vms_) {
    if (vm->migrating && vm->dst_host == id) space.live_vcpus += vm->spec.vcpus;
  }
  space.total_pcpus = hv.config().machine.total_pcpus();
  space.cores_per_node = hv.config().machine.cores_per_node;
  return space;
}

int Cluster::admit(VmSpec spec) {
  if (spec.name.empty() || find_vm_by_name(spec.name) >= 0 ||
      spec.mem_bytes <= 0 || spec.vcpus <= 0 ||
      spec.host >= num_hosts()) {
    ++rejected_;
    return -1;
  }
  // Requests are sized per candidate host (chunk size is a host property),
  // so the selection loop mirrors pick_host() instead of calling it.
  int best = -1;
  PlacementScore best_score;
  const int first = spec.host >= 0 ? spec.host : 0;
  const int last = spec.host >= 0 ? spec.host : num_hosts() - 1;
  for (int id = first; id <= last; ++id) {
    const PlacementRequest req{chunks_on(id, spec.mem_bytes), spec.vcpus};
    const PlacementScore s = score_host(host_space(id), req, config_.placement);
    if (!s.feasible) continue;
    const bool better =
        best < 0 || (s.shape_fit && !best_score.shape_fit) ||
        (s.shape_fit == best_score.shape_fit && s.headroom > best_score.headroom);
    if (better) {
      best = id;
      best_score = s;
    }
  }
  if (best < 0) {
    ++rejected_;
    return -1;
  }

  hv::Hypervisor& hv = *hosts_[static_cast<std::size_t>(best)];
  hv::Domain& dom = hv.create_domain(spec.name, spec.mem_bytes, spec.vcpus,
                                     spec.policy, spec.preferred);
  if (spec.alternate) dom.memory().alternate_allocation(true);

  auto vm = std::make_unique<Vm>();
  vm->id = next_vm_id_++;
  vm->host = best;
  vm->domain_id = dom.id();
  vm->chunks = chunks_on(best, spec.mem_bytes);
  if (spec.workload) vm->workload = spec.workload(hv, dom);
  vm->spec = std::move(spec);
  const int vm_id = vm->id;
  if (vm->spec.autostart && vm->workload) {
    vm->workload->start();
    vm->started = true;
  }
  vms_.push_back(std::move(vm));
  ++admitted_;
  notify_check();
  return vm_id;
}

bool Cluster::start_vm(int vm_id) {
  Vm* vm = find_vm(vm_id);
  if (vm == nullptr || vm->started || !vm->workload) return false;
  vm->workload->start();
  vm->started = true;
  return true;
}

bool Cluster::destroy(int vm_id) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [vm_id](const auto& vm) { return vm->id == vm_id; });
  if (it == vms_.end()) return false;
  Vm& vm = **it;
  if (vm.migrating) {
    vm.migration_event.cancel();
    reserved_chunks_[static_cast<std::size_t>(vm.dst_host)] -=
        chunks_on(vm.dst_host, vm.spec.mem_bytes);
  }
  if (vm.workload && vm.started) vm.workload->stop();
  hv::Hypervisor& hv = *hosts_[static_cast<std::size_t>(vm.host)];
  if (hv.find_domain(vm.domain_id) != nullptr) hv.destroy_domain(vm.domain_id);
  vms_.erase(it);
  notify_check();
  return true;
}

bool Cluster::pause(int vm_id) {
  Vm* vm = find_vm(vm_id);
  if (vm == nullptr || vm->paused || vm->migrating) return false;
  hv::Domain* dom = domain_of(vm_id);
  if (dom == nullptr) return false;
  hosts_[static_cast<std::size_t>(vm->host)]->pause_domain(*dom);
  vm->paused = true;
  return true;
}

bool Cluster::resume(int vm_id) {
  Vm* vm = find_vm(vm_id);
  if (vm == nullptr || !vm->paused) return false;
  hv::Domain* dom = domain_of(vm_id);
  if (dom == nullptr) return false;
  hosts_[static_cast<std::size_t>(vm->host)]->resume_domain(*dom);
  vm->paused = false;
  return true;
}

// -- Live migration -----------------------------------------------------------

bool Cluster::migrate(int vm_id, int dst_host) {
  Vm* vm = find_vm(vm_id);
  // A VM must have booted to migrate (pre-copy tracks a *running* guest's
  // dirty pages).  This also keeps a staggered start_vm event, which lives
  // on the admission host's engine, from racing a cross-shard move in
  // sharded runs (docs/PDES.md).
  if (vm == nullptr || vm->migrating || vm->paused || !vm->started ||
      !vm->spec.workload || dst_host < 0 || dst_host >= num_hosts() ||
      dst_host == vm->host) {
    ++migrations_rejected_;
    return false;
  }
  const PlacementRequest req{chunks_on(dst_host, vm->spec.mem_bytes),
                             vm->spec.vcpus};
  if (!score_host(host_space(dst_host), req, config_.placement).feasible) {
    ++migrations_rejected_;
    return false;
  }
  reserved_chunks_[static_cast<std::size_t>(dst_host)] += req.chunks;
  vm->migrating = true;
  vm->dst_host = dst_host;
  vm->remaining_bytes = static_cast<double>(vm->spec.mem_bytes);
  vm->rounds_done = 0;
  ++migrations_started_;
  notify_check();
  run_precopy_round(vm_id);
  return true;
}

void Cluster::run_precopy_round(int vm_id) {
  Vm* vm = find_vm(vm_id);
  if (vm == nullptr) return;
  const double bytes = vm->remaining_bytes;
  const sim::Time dur = std::max(
      config_.migration.min_round,
      sim::Time::seconds(bytes / config_.migration.bandwidth_bytes_per_s));
  vm->migration_event = engine_.schedule(dur, [this, vm_id, bytes, dur] {
    Vm* v = find_vm(vm_id);
    if (v == nullptr || !v->migrating) return;
    charge_copy_traffic(*v, v->dst_host, bytes, dur);
    migrated_bytes_ += bytes;
    ++precopy_rounds_;
    ++v->rounds_done;
    // Pages the (still running) guest dirtied while this round copied.
    const double dirtied =
        v->started && !v->paused
            ? v->spec.dirty_bytes_per_s * dur.to_seconds()
            : 0.0;
    const double total = static_cast<double>(v->spec.mem_bytes);
    if (dirtied <= config_.migration.stop_ratio * total ||
        v->rounds_done >= config_.migration.max_precopy_rounds) {
      begin_cutover(vm_id, dirtied);
    } else {
      v->remaining_bytes = dirtied;
      run_precopy_round(vm_id);
    }
  });
}

void Cluster::begin_cutover(int vm_id, double dirty_bytes) {
  Vm* vm = find_vm(vm_id);
  if (vm == nullptr) return;
  // Stop-and-copy: the source domain pauses for the final dirty-page copy;
  // this window is the migration's downtime.
  hv::Domain* dom = domain_of(vm_id);
  if (dom != nullptr && !vm->paused) {
    hosts_[static_cast<std::size_t>(vm->host)]->pause_domain(*dom);
  }
  const sim::Time downtime = std::max(
      config_.migration.min_round,
      sim::Time::seconds(dirty_bytes / config_.migration.bandwidth_bytes_per_s));
  vm->migration_event =
      engine_.schedule(downtime, [this, vm_id, dirty_bytes, downtime] {
        Vm* v = find_vm(vm_id);
        if (v == nullptr || !v->migrating) return;
        charge_copy_traffic(*v, v->dst_host, dirty_bytes, downtime);
        migrated_bytes_ += dirty_bytes;
        complete_migration(vm_id);
      });
}

void Cluster::complete_migration(int vm_id) {
  Vm* vm = find_vm(vm_id);
  if (vm == nullptr) return;
  const int src = vm->host;
  const int dst = vm->dst_host;
  const bool was_started = vm->started;

  // Tear down the source incarnation.
  if (vm->workload && vm->started) vm->workload->stop();
  vm->workload.reset();
  hv::Hypervisor& src_hv = *hosts_[static_cast<std::size_t>(src)];
  if (src_hv.find_domain(vm->domain_id) != nullptr) {
    src_hv.destroy_domain(vm->domain_id);
  }
  reserved_chunks_[static_cast<std::size_t>(dst)] -=
      chunks_on(dst, vm->spec.mem_bytes);

  // Bring up the destination incarnation and rebind the guest software.
  hv::Hypervisor& dst_hv = *hosts_[static_cast<std::size_t>(dst)];
  hv::Domain& dom =
      dst_hv.create_domain(vm->spec.name, vm->spec.mem_bytes, vm->spec.vcpus,
                           vm->spec.policy, vm->spec.preferred);
  if (vm->spec.alternate) dom.memory().alternate_allocation(true);
  vm->host = dst;
  vm->domain_id = dom.id();
  vm->chunks = chunks_on(dst, vm->spec.mem_bytes);
  vm->workload = vm->spec.workload(dst_hv, dom);
  vm->started = false;
  if (was_started) {
    vm->workload->start();
    vm->started = true;
  }
  vm->migrating = false;
  vm->dst_host = -1;
  vm->remaining_bytes = 0.0;
  ++migrations_completed_;
  notify_check();
}

void Cluster::charge_copy_traffic(Vm& vm, int dst_host, double bytes,
                                  sim::Time dur) {
  if (bytes <= 0.0) return;
  const sim::Time now = engine_.now();
  // Source side: page reads stream from wherever the VM's memory lives to
  // the migration NIC on node 0 (node-0-resident pages never cross the
  // fabric — record_traffic(n, n, ...) is a no-op).
  hv::Hypervisor& src_hv = *hosts_[static_cast<std::size_t>(vm.host)];
  hv::Domain* dom = src_hv.find_domain(vm.domain_id);
  if (dom != nullptr) {
    const std::vector<std::int64_t> census = dom->memory().node_census();
    std::int64_t homed = 0;
    for (std::int64_t c : census) homed += c;
    if (homed > 0) {
      auto& fabric = src_hv.machine_state().interconnect();
      for (int n = 0; n < static_cast<int>(census.size()); ++n) {
        const double share = bytes * static_cast<double>(
                                         census[static_cast<std::size_t>(n)]) /
                             static_cast<double>(homed);
        if (share > 0.0) fabric.record_traffic(n, 0, share, now, dur);
      }
    }
  }
  // Destination side: the receiving host scatters page writes from its NIC
  // (node 0) across its nodes; before the domain exists we assume an even
  // spread — the worst case for its fabric.
  hv::Hypervisor& dst_hv = *hosts_[static_cast<std::size_t>(dst_host)];
  const int dst_nodes = dst_hv.config().machine.num_nodes;
  if (dst_nodes > 1) {
    auto& fabric = dst_hv.machine_state().interconnect();
    const double share = bytes / static_cast<double>(dst_nodes);
    for (int n = 1; n < dst_nodes; ++n) {
      fabric.record_traffic(0, n, share, now, dur);
    }
  }
}

// -- Load balancing -------------------------------------------------------------

void Cluster::balance_once() {
  if (num_hosts() < 2) return;
  int max_host = 0;
  int min_host = 0;
  double max_load = -1.0;
  double min_load = -1.0;
  for (int id = 0; id < num_hosts(); ++id) {
    const auto& hv = *hosts_[static_cast<std::size_t>(id)];
    const int pcpus = hv.config().machine.total_pcpus();
    const double load =
        pcpus > 0
            ? static_cast<double>(hv.all_vcpus().size()) / static_cast<double>(pcpus)
            : 0.0;
    if (max_load < 0.0 || load > max_load) {
      max_load = load;
      max_host = id;
    }
    if (min_load < 0.0 || load < min_load) {
      min_load = load;
      min_host = id;
    }
  }
  if (max_host == min_host || max_load - min_load <= config_.balance_threshold) {
    return;
  }
  // Move the cheapest movable VM (fewest chunks, then lowest id) off the
  // hottest host; one action per period keeps the balancer damped.
  Vm* pick = nullptr;
  for (auto& vm : vms_) {
    if (vm->host != max_host || vm->migrating || vm->paused ||
        !vm->spec.workload || !vm->started) {
      continue;
    }
    if (pick == nullptr || vm->chunks < pick->chunks ||
        (vm->chunks == pick->chunks && vm->id < pick->id)) {
      pick = vm.get();
    }
  }
  if (pick != nullptr && migrate(pick->id, min_host)) ++balance_actions_;
}

// -- Introspection --------------------------------------------------------------

std::vector<Cluster::VmView> Cluster::vms() const {
  std::vector<VmView> out;
  out.reserve(vms_.size());
  for (const auto& vm : vms_) {
    VmView view;
    view.id = vm->id;
    view.name = vm->spec.name;
    view.host = vm->host;
    view.domain_id = vm->domain_id;
    view.chunks = vm->chunks;
    view.paused = vm->paused;
    view.migrating = vm->migrating;
    view.dst_host = vm->dst_host;
    view.movable = static_cast<bool>(vm->spec.workload);
    out.push_back(std::move(view));
  }
  return out;
}

int Cluster::host_of(int vm_id) const {
  const Vm* vm = find_vm(vm_id);
  return vm != nullptr ? vm->host : -1;
}

hv::Domain* Cluster::domain_of(int vm_id) {
  Vm* vm = find_vm(vm_id);
  if (vm == nullptr) return nullptr;
  return hosts_[static_cast<std::size_t>(vm->host)]->find_domain(vm->domain_id);
}

int Cluster::find_vm_by_name(const std::string& name) const {
  for (const auto& vm : vms_) {
    if (vm->spec.name == name) return vm->id;
  }
  return -1;
}

std::uint64_t Cluster::fleet_digest() const {
  std::uint64_t hash = trace::fnv1a_basis();
  for (int id = 0; id < num_hosts(); ++id) {
    const auto& tracer = *tracers_[static_cast<std::size_t>(id)];
    hash = trace::fnv1a_mix(hash, static_cast<std::uint64_t>(id));
    hash = trace::fnv1a_mix(hash, tracer.digest());
    hash = trace::fnv1a_mix(hash, tracer.total_recorded());
  }
  return hash;
}

Cluster::Vm* Cluster::find_vm(int vm_id) {
  for (auto& vm : vms_) {
    if (vm->id == vm_id) return vm.get();
  }
  return nullptr;
}

const Cluster::Vm* Cluster::find_vm(int vm_id) const {
  for (const auto& vm : vms_) {
    if (vm->id == vm_id) return vm.get();
  }
  return nullptr;
}

void Cluster::notify_check() {
  if (check_ != nullptr) check_->on_transition(*this);
}

}  // namespace vprobe::cluster
