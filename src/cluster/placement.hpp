// Initial-placement policy for the cluster control plane.
//
// The feasibility filter follows Gudkov et al. ("Efficient calculation of
// available space for multi-NUMA virtual machines", PAPERS.md): a VM that
// spans NUMA nodes is modelled as k equal memory pieces that must land on
// k distinct nodes, and a host is a shape-fit when its per-node free-chunk
// vector admits that split.  Hosts that only fit by total free memory
// (fill-first would scatter the pieces) remain admissible but rank below
// every shape-fit host.  Among hosts of the same class the controller
// picks worst-fit — the host keeping the most memory+CPU headroom after
// placement — which spreads load and keeps room for VMs to grow.
//
// Everything here is pure math over snapshots, deterministic, and
// unit-testable without a hypervisor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vprobe::cluster {

/// What a VM asks of a host, in that host's units.
struct PlacementRequest {
  std::int64_t chunks = 0;  ///< guest memory, in the host's chunk size
  int vcpus = 0;
};

/// Snapshot of one host's available space (net of in-flight migration
/// reservations — the caller subtracts those).
struct HostSpace {
  int host = -1;
  std::vector<std::int64_t> free_chunks;      ///< per node
  std::vector<std::int64_t> capacity_chunks;  ///< per node
  int live_vcpus = 0;   ///< VCPUs currently hosted (any state but Done)
  int total_pcpus = 0;
  int cores_per_node = 0;

  std::int64_t total_free() const;
  std::int64_t total_capacity() const;
};

struct PlacementPolicyConfig {
  /// Admission cap on live VCPUs per host, as a multiple of PCPUs.  The
  /// simulated fleets routinely oversubscribe 1.5-3x; 8x is the refuse-to-
  /// thrash backstop, not a performance target.
  double cpu_overcommit = 8.0;
};

/// Gudkov-style shape test: can `pieces` pieces of `per_piece` chunks land
/// on `pieces` distinct nodes of this free vector?
bool fits_shape(std::span<const std::int64_t> free_chunks, int pieces,
                std::int64_t per_piece);

/// Number of nodes the request wants to span on a host with this geometry:
/// enough nodes to seat the VCPUs and to hold a per-node memory piece,
/// clamped to the node count.
int desired_pieces(const HostSpace& host, const PlacementRequest& req);

struct PlacementScore {
  bool feasible = false;   ///< total free memory + CPU cap admit the VM
  bool shape_fit = false;  ///< the k-piece multi-NUMA split also fits
  double headroom = 0.0;   ///< mean of post-placement memory/CPU headroom
};

PlacementScore score_host(const HostSpace& host, const PlacementRequest& req,
                          const PlacementPolicyConfig& cfg);

/// Best host for the request, or -1 when none is feasible.  Ranking:
/// shape-fit before overflow-fit, then max headroom (worst-fit), then
/// lowest host id — fully deterministic.
int pick_host(std::span<const HostSpace> hosts, const PlacementRequest& req,
              const PlacementPolicyConfig& cfg);

}  // namespace vprobe::cluster
