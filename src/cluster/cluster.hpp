// The cluster control plane: N hypervisors on one control engine, with
// optional per-host engine shards (PDES).
//
// A Cluster owns one control sim::Engine plus one hv::Hypervisor per host
// spec — each host with its own machine config, contention stack, scheduler
// instance, tracer stream (tagged by host id) and a child RNG stream
// derived from (run seed, host id), so fleet digests are invariant to
// host-construction order.  With Config::sim_threads > 1 every host also
// gets a private engine shard; run_until() then advances the shards on a
// worker pool under a conservative-lookahead synchronizer whose windows end
// at the next control-plane event (balancer tick, migration round, churn
// arrival, scripted directive), bit-identical to the serial path — the
// model, the ordering rule and the determinism argument live in
// docs/PDES.md.  Above the per-host schedulers it provides the
// datacenter-level mechanisms the ROADMAP's scale-out item names:
//
//  * admission control + initial placement: a Gudkov-style per-host
//    available-space feasibility filter (cluster/placement.hpp) picks the
//    host; infeasible VMs are rejected, not queued;
//  * cross-host live migration: pre-copy rounds as engine events, page-copy
//    traffic charged through both hosts' Interconnect models (the
//    migration NIC hangs off node 0), dirty rate from the VM's workload
//    profile, stop-and-copy cutover with a real downtime window;
//  * a periodic load balancer that moves the smallest movable VM from the
//    most- to the least-loaded host when the gap exceeds a threshold.
//
// Determinism: every decision is a pure function of (config, admission
// order, engine time); all randomness lives in the per-host hypervisor
// streams.  The fleet digest folds the per-host running trace digests in
// host-id order, so `--jobs 1` and `--jobs N` runs of the same spec agree
// bit-for-bit.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/shard_pool.hpp"
#include "cluster/workload.hpp"
#include "hv/hypervisor.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace vprobe::cluster {

class FleetCheck;

/// One machine of the fleet.
struct HostSpec {
  std::string name;  ///< label for stats/violations; defaults to "host<id>"
  numa::MachineConfig machine = numa::MachineConfig::xeon_e5620();
};

/// Per-host scheduler factory: the cluster cannot depend on runner/, so the
/// caller supplies scheduler construction (one fresh instance per host).
using SchedulerFactory =
    std::function<std::unique_ptr<hv::Scheduler>(int host_id)>;

/// Live-migration cost model knobs.
struct MigrationOptions {
  /// Migration NIC bandwidth (10 GbE with protocol overhead).
  double bandwidth_bytes_per_s = 1.25e9;
  /// Give up converging and cut over after this many pre-copy rounds.
  int max_precopy_rounds = 8;
  /// Cut over once a round would re-send <= this fraction of the VM.
  double stop_ratio = 0.02;
  /// Floor on round/downtime duration (protocol latency).
  sim::Time min_round = sim::Time::us(50);
};

/// A VM as the control plane sees it.
struct VmSpec {
  std::string name;  ///< unique across the cluster
  std::int64_t mem_bytes = 0;
  int vcpus = 1;
  numa::PlacementPolicy policy = numa::PlacementPolicy::kFillFirst;
  numa::NodeId preferred = 0;
  bool alternate = false;
  int host = -1;  ///< pin to this host id; -1 = controller places
  /// Guest page-dirty rate during pre-copy (from the workload profile);
  /// 0 = cold VM, a single copy round converges.
  double dirty_bytes_per_s = 0.0;
  /// Start the factory workload at admission (churn semantics).  When
  /// false the caller staggers starts via start_vm().
  bool autostart = true;
  /// Rebindable guest software; VMs without a factory cannot live-migrate.
  WorkloadFactory workload;
};

struct Config {
  std::uint64_t seed = 1;
  /// Template for every host's hv config; machine/seed/host_id are
  /// overridden per host.
  hv::Hypervisor::Config host_template;
  PlacementPolicyConfig placement;
  MigrationOptions migration;
  /// Cluster load-balancer period; zero disables it.
  sim::Time balance_period = sim::Time::zero();
  /// Balancer acts when (max - min) per-host load exceeds this, where load
  /// = live VCPUs / PCPUs.
  double balance_threshold = 0.25;
  /// Per-host tracer ring capacity.  The running digest is exact even when
  /// a ring wraps, so fleets default to a small ring.
  std::size_t trace_capacity = 8192;
  /// Engine shards for one run (PDES).  1 = the serial shared-engine path,
  /// the reference semantics; N > 1 gives every host a private engine
  /// shard and run_until() advances them on N worker threads (capped at
  /// the host count) under the conservative-lookahead synchronizer, with
  /// results bit-identical to sim_threads=1 (docs/PDES.md).  <= 0 picks
  /// one thread per hardware core.
  int sim_threads = 1;
  /// Batched demand-driven windows (docs/PDES.md): coalesce back-to-back
  /// control events while no shard has work below the coupling point,
  /// dispatch only busy shards, and advance idle shards' clocks directly
  /// from the control thread.  false restores the one-barrier-per-control-
  /// event loop (--no-window-batch); results are bit-identical either way.
  bool window_batch = true;
};

/// Synchronizer counters for a sharded run (all zero in serial mode).
/// Batch-on and batch-off runs of the same spec produce identical digests
/// but different counters — that asymmetry is the point: windows_coalesced
/// and shard_skips measure barriers the batched loop did not pay.
struct SyncStats {
  std::uint64_t windows = 0;            ///< coupling points processed
  std::uint64_t windows_coalesced = 0;  ///< windows fired with no shard pass
  std::uint64_t control_events = 0;     ///< control-engine events fired
  std::uint64_t barriers = 0;           ///< ShardPool barriers paid
  std::uint64_t shard_dispatches = 0;   ///< shard run_before/run_until calls
  std::uint64_t shard_skips = 0;        ///< idle shards advanced in O(1)
  std::uint64_t pool_wakeups = 0;       ///< condvar notifies to parked workers
  std::uint64_t pool_spin_grabs = 0;    ///< batches a worker joined by spinning
  std::uint64_t pool_parks = 0;         ///< times a worker parked after spinning
};

class Cluster {
 public:
  Cluster(Config config, std::span<const HostSpec> hosts,
          SchedulerFactory scheduler_factory);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // -- Fleet access -----------------------------------------------------------

  /// The control engine: all cluster-level events (balancer, migration
  /// rounds, churn arrivals, scripted directives) live here.  In serial
  /// mode it is also every host's engine.
  sim::Engine& engine() { return engine_; }
  sim::Time now() const { return engine_.now(); }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  /// True when this fleet runs host shards on worker threads (resolved
  /// from Config::sim_threads and the host count at construction).
  bool sharded() const { return !shard_engines_.empty(); }
  /// Worker threads the synchronizer uses; 1 in serial mode.
  int sim_threads() const { return sim_threads_; }
  /// The engine a host's own events live on: its shard when sharded, the
  /// control engine otherwise.  Host-local setup events (staggered
  /// workload starts, externally-owned app starters) must be scheduled
  /// here, never on engine(), so each host's event order matches the
  /// serial path (docs/PDES.md).
  sim::Engine& host_engine(int id) {
    return sharded() ? *shard_engines_.at(static_cast<std::size_t>(id))
                     : engine_;
  }
  hv::Hypervisor& host(int id) { return *hosts_.at(static_cast<std::size_t>(id)); }
  const std::string& host_name(int id) const {
    return host_names_.at(static_cast<std::size_t>(id));
  }
  trace::Tracer& tracer(int id) { return *tracers_.at(static_cast<std::size_t>(id)); }

  /// Arm every host's timers (id order) and the cluster balancer.
  void start();

  /// Advance the whole fleet to `deadline` (events exactly at `deadline`
  /// fire, like Engine::run_until).  Serial mode runs the shared engine
  /// directly; sharded mode alternates conservative host windows with
  /// control-plane events under the rule "at equal times, control events
  /// fire before host events" (docs/PDES.md proves this matches the
  /// serial order).  Returns the number of events run, fleet-wide.
  std::size_t run_until(sim::Time deadline);

  // -- Control plane ----------------------------------------------------------

  /// Admit a VM: feasibility-filter every candidate host, create the
  /// domain on the winner, boot the workload (autostart).  Returns the
  /// cluster-wide VM id, or -1 when no host can take it (rejected()).
  int admit(VmSpec spec);

  /// Start a VM admitted with autostart=false.
  bool start_vm(int vm_id);

  /// Stop the workload (if cluster-managed), destroy the domain, and
  /// forget the VM.  Cancels an in-flight migration.
  bool destroy(int vm_id);

  bool pause(int vm_id);   ///< refused while a migration is in flight
  bool resume(int vm_id);

  /// Begin a pre-copy live migration to `dst_host`.  Refused (with
  /// migrations_rejected() bumped) when the VM is unknown, paused, already
  /// migrating, not rebindable, or the destination is infeasible.
  bool migrate(int vm_id, int dst_host);

  // -- Introspection ----------------------------------------------------------

  struct VmView {
    int id = -1;
    std::string name;
    int host = -1;
    int domain_id = -1;
    std::int64_t chunks = 0;
    bool paused = false;
    bool migrating = false;
    int dst_host = -1;
    bool movable = false;  ///< has a workload factory
  };
  std::vector<VmView> vms() const;
  int host_of(int vm_id) const;     ///< -1 when unknown
  hv::Domain* domain_of(int vm_id);
  int find_vm_by_name(const std::string& name) const;  ///< -1 when unknown

  /// Available space on a host, net of in-flight migration reservations.
  HostSpace host_space(int id) const;
  /// Destination chunks reserved by in-flight migrations onto `id`.
  std::int64_t reserved_chunks(int id) const {
    return reserved_chunks_.at(static_cast<std::size_t>(id));
  }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t migrations_started() const { return migrations_started_; }
  std::uint64_t migrations_completed() const { return migrations_completed_; }
  std::uint64_t migrations_rejected() const { return migrations_rejected_; }
  std::uint64_t precopy_rounds() const { return precopy_rounds_; }
  double migrated_bytes() const { return migrated_bytes_; }
  std::uint64_t balance_actions() const { return balance_actions_; }

  /// Synchronizer counters, cumulative across run_until() calls, with the
  /// ShardPool's handoff stats folded in.  Zero for serial runs.
  SyncStats sync_stats() const;

  /// Fleet digest: per-host running trace digests + record counts folded
  /// in host-id order (FNV-1a).  Bit-identical across serial/parallel runs
  /// and across host-construction order.
  std::uint64_t fleet_digest() const;

  /// Attach the cluster-level invariant observer (nullptr detaches).
  void set_check(FleetCheck* check) { check_ = check; }

  const Config& config() const { return config_; }

 private:
  struct Vm {
    int id = -1;
    VmSpec spec;
    int host = -1;
    int domain_id = -1;
    std::int64_t chunks = 0;  ///< in the current host's chunk units
    std::unique_ptr<Workload> workload;
    bool started = false;
    bool paused = false;
    bool migrating = false;
    int dst_host = -1;
    double remaining_bytes = 0.0;
    int rounds_done = 0;
    sim::EventHandle migration_event;
  };

  /// Cached shard horizon for the batched synchronizer: the shard's
  /// next_event_time() as of arm_count() == arm_seq.  Arming is the only
  /// operation that lowers the true horizon and it always bumps the arm
  /// count, so a cache hit can only be stale-low (harmless extra dispatch),
  /// never stale-high (docs/PDES.md).  arm_seq starts poisoned so the
  /// first window refreshes every shard.
  struct ShardHorizon {
    sim::Time next = sim::Time::zero();
    std::uint64_t arm_seq = ~0ull;
  };

  Vm* find_vm(int vm_id);
  const Vm* find_vm(int vm_id) const;
  std::size_t run_until_batched(sim::Time deadline);
  std::size_t run_until_unbatched(sim::Time deadline);
  std::int64_t chunks_on(int host_id, std::int64_t mem_bytes) const;
  void run_precopy_round(int vm_id);
  void begin_cutover(int vm_id, double dirty_bytes);
  void complete_migration(int vm_id);
  /// Charge one copy burst through both hosts' interconnects: reads spread
  /// over the source VM's memory census, writes spread over the
  /// destination's nodes; the NIC sits on node 0 of each host.
  void charge_copy_traffic(Vm& vm, int dst_host, double bytes, sim::Time dur);
  void balance_once();
  void notify_check();

  Config config_;
  /// Engines must outlive hosts_ and vms_ (their destructors cancel
  /// events), so they are declared first; ~Cluster also clears them all
  /// before any member dies.
  sim::Engine engine_;  ///< control engine (and the only one when serial)
  std::vector<std::unique_ptr<sim::Engine>> shard_engines_;  ///< per host
  std::unique_ptr<ShardPool> pool_;  ///< built on first sharded run_until
  int sim_threads_ = 1;
  std::vector<ShardHorizon> horizons_;  ///< per-shard, batched mode only
  SyncStats sync_;
  std::vector<std::unique_ptr<hv::Hypervisor>> hosts_;
  std::vector<std::string> host_names_;
  std::vector<std::unique_ptr<trace::Tracer>> tracers_;
  std::vector<std::int64_t> reserved_chunks_;  ///< per-host, migration dst
  std::vector<std::unique_ptr<Vm>> vms_;
  sim::EventHandle balance_timer_;
  FleetCheck* check_ = nullptr;
  int next_vm_id_ = 1;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t migrations_started_ = 0;
  std::uint64_t migrations_completed_ = 0;
  std::uint64_t migrations_rejected_ = 0;
  std::uint64_t precopy_rounds_ = 0;
  double migrated_bytes_ = 0.0;
  std::uint64_t balance_actions_ = 0;
};

}  // namespace vprobe::cluster
