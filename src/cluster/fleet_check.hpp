// Fleet-wide invariant checking: per-machine checkers + cluster rules.
//
// A FleetCheck owns one check::InvariantChecker per host (each scoped
// "[hostN]" so violations stay attributable) and adds the control-plane
// invariant the per-host checkers cannot see: every admitted VM is resident
// on exactly one host — its recorded one — at every control-plane
// transition, including while a live migration is in flight (the domain
// stays on the source until the cutover event, which destroys the source
// incarnation before creating the destination one).  Destination-side
// memory reservations must also net out: zero on hosts with no inbound
// migration, never negative anywhere.
//
// Each engine has a single observer slot: on a serial fleet (one shared
// engine) host 0's checker takes it, while a sharded PDES fleet gives every
// host shard its own checker as observer — event-time monotonicity and
// equal-time FIFO order are per-engine properties either way.  Every host
// always gets the full HvObserver hook set.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hpp"

namespace vprobe::cluster {

class Cluster;

class FleetCheck {
 public:
  /// Attaches to every host of `cluster` and registers for control-plane
  /// transitions.  The FleetCheck must outlive the cluster or the caller
  /// must destroy it first (the destructor detaches both sides).
  explicit FleetCheck(Cluster& cluster);
  ~FleetCheck();
  FleetCheck(const FleetCheck&) = delete;
  FleetCheck& operator=(const FleetCheck&) = delete;

  /// Cluster hook: verify the residency + reservation invariants against
  /// the current control-plane state.  Called by the Cluster after every
  /// admit/destroy/migration transition.
  void on_transition(Cluster& cluster);

  check::InvariantChecker& host_checker(int id) {
    return *checkers_.at(static_cast<std::size_t>(id));
  }

  bool ok() const;
  /// All violations: per-host checker findings, then cluster-level ones.
  std::vector<check::Violation> violations() const;
  std::uint64_t total_violations() const;

  /// Full sweep of every host plus the cluster rules; throws
  /// std::runtime_error describing the first violations, if any.
  void expect_ok();

 private:
  void report(const Cluster& cluster, std::string what);

  Cluster* cluster_;
  std::vector<std::unique_ptr<check::InvariantChecker>> checkers_;
  std::vector<check::Violation> cluster_violations_;
  std::uint64_t cluster_total_ = 0;
};

}  // namespace vprobe::cluster
