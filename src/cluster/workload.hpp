// Type-erased guest workload handle for the cluster control plane.
//
// The cluster must be able to stop a VM's guest threads on the source host
// and rebuild them on the destination after a live migration, without
// depending on the concrete workload types in src/workload (which would
// invert the library layering).  A WorkloadFactory captures "how to boot
// this VM's software" and is re-invoked against the new domain on cutover.
#pragma once

#include <functional>
#include <memory>

namespace vprobe::hv {
class Hypervisor;
class Domain;
}  // namespace vprobe::hv

namespace vprobe::cluster {

/// One VM's running guest software.  start() wakes/boots the guest
/// threads; stop() retires them cleanly so the domain can be destroyed.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual void start() = 0;
  virtual void stop() = 0;
};

/// Builds a fresh workload bound to `dom` on `hv` — called at admission and
/// again on the destination host when a live migration rebinds the VM.  A
/// VM without a factory cannot be live-migrated (its guest state is opaque
/// to the control plane).
using WorkloadFactory = std::function<std::unique_ptr<Workload>(
    hv::Hypervisor& hv, hv::Domain& dom)>;

}  // namespace vprobe::cluster
