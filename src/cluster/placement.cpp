#include "cluster/placement.hpp"

#include <algorithm>

namespace vprobe::cluster {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return b > 0 ? (a + b - 1) / b : 0;
}

}  // namespace

std::int64_t HostSpace::total_free() const {
  std::int64_t total = 0;
  for (std::int64_t f : free_chunks) total += f;
  return total;
}

std::int64_t HostSpace::total_capacity() const {
  std::int64_t total = 0;
  for (std::int64_t c : capacity_chunks) total += c;
  return total;
}

bool fits_shape(std::span<const std::int64_t> free_chunks, int pieces,
                std::int64_t per_piece) {
  if (pieces <= 0) return true;
  if (pieces > static_cast<int>(free_chunks.size())) return false;
  // Equal pieces on distinct nodes: feasible iff the `pieces` largest free
  // counts each hold one piece (the greedy choice is exact for equal sizes).
  std::vector<std::int64_t> sorted(free_chunks.begin(), free_chunks.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<std::int64_t>());
  for (int i = 0; i < pieces; ++i) {
    if (sorted[static_cast<std::size_t>(i)] < per_piece) return false;
  }
  return true;
}

int desired_pieces(const HostSpace& host, const PlacementRequest& req) {
  const int nodes = static_cast<int>(host.capacity_chunks.size());
  if (nodes <= 1) return std::max(1, nodes);
  // CPU side: enough nodes to seat the VCPUs one-per-core.
  const int by_cpu = host.cores_per_node > 0
                         ? static_cast<int>(ceil_div(req.vcpus, host.cores_per_node))
                         : 1;
  // Memory side: enough nodes that a per-node piece fits a whole node.
  const std::int64_t node_cap =
      *std::max_element(host.capacity_chunks.begin(), host.capacity_chunks.end());
  const int by_mem =
      node_cap > 0 ? static_cast<int>(ceil_div(req.chunks, node_cap)) : 1;
  return std::clamp(std::max({1, by_cpu, by_mem}), 1, nodes);
}

PlacementScore score_host(const HostSpace& host, const PlacementRequest& req,
                          const PlacementPolicyConfig& cfg) {
  PlacementScore score;
  const std::int64_t total_free = host.total_free();
  const std::int64_t total_cap = host.total_capacity();
  const double cpu_cap =
      static_cast<double>(host.total_pcpus) * cfg.cpu_overcommit;
  if (req.chunks > total_free) return score;
  if (static_cast<double>(host.live_vcpus + req.vcpus) > cpu_cap) return score;
  score.feasible = true;

  const int pieces = desired_pieces(host, req);
  score.shape_fit =
      fits_shape(host.free_chunks, pieces, ceil_div(req.chunks, pieces));

  const double mem_headroom =
      total_cap > 0
          ? static_cast<double>(total_free - req.chunks) / static_cast<double>(total_cap)
          : 0.0;
  const double cpu_headroom =
      cpu_cap > 0
          ? 1.0 - static_cast<double>(host.live_vcpus + req.vcpus) / cpu_cap
          : 0.0;
  score.headroom = 0.5 * (mem_headroom + cpu_headroom);
  return score;
}

int pick_host(std::span<const HostSpace> hosts, const PlacementRequest& req,
              const PlacementPolicyConfig& cfg) {
  int best = -1;
  PlacementScore best_score;
  for (const HostSpace& host : hosts) {
    const PlacementScore s = score_host(host, req, cfg);
    if (!s.feasible) continue;
    const bool better =
        best < 0 || (s.shape_fit && !best_score.shape_fit) ||
        (s.shape_fit == best_score.shape_fit && s.headroom > best_score.headroom);
    if (better) {
      best = host.host;
      best_score = s;
    }
  }
  return best;
}

}  // namespace vprobe::cluster
