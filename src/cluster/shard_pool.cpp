#include "cluster/shard_pool.hpp"

#include <algorithm>

namespace vprobe::cluster {

namespace {

// One relaxation step inside the spin phase: tells the core the loop is a
// spin-wait (SMT-friendly, saves power) without involving the scheduler.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ShardPool::ShardPool(int threads) {
  const int extra = std::max(0, threads - 1);
  wake_hint_ = extra;
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ShardPool::Stats ShardPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ShardPool::drain(std::unique_lock<std::mutex>& lk, bool caller) {
  while (next_ < n_) {
    const int i = next_++;
    if (!caller) {
      ++worker_claims_;
      // Chain wake: a worker winning an index while more remain means the
      // adaptive hint under-woke this batch — heal one lane at a time (the
      // chain ramps exponentially across the woken workers).
      if (next_ < n_ && parked_ > 0) {
        work_cv_.notify_one();
        ++stats_.wakeups;
      }
    }
    lk.unlock();
    std::exception_ptr err;
    try {
      (*fn_)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err && !error_) error_ = err;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ShardPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  fn_ = &fn;
  n_ = n;
  next_ = 0;
  pending_ = n;
  worker_claims_ = 0;
  error_ = nullptr;
  ++stats_.batches;
  // Publish the batch before any notify so spinning workers join from the
  // epoch alone; then wake at most n-1 parked workers (the caller is the
  // n-th lane), further capped by the adaptive hint.
  epoch_.fetch_add(1, std::memory_order_release);
  const int wake = std::min({n - 1, parked_, wake_hint_});
  for (int i = 0; i < wake; ++i) work_cv_.notify_one();
  stats_.wakeups += static_cast<std::uint64_t>(wake);
  drain(lk, /*caller=*/true);
  done_cv_.wait(lk, [this] { return pending_ == 0; });
  n_ = 0;
  fn_ = nullptr;
  // Adapt the wake cap to observed concurrency: when every claim went to
  // the caller (the 1-core builder), waking workers was pure overhead —
  // halve toward a single probe lane; any worker claim grows it back
  // toward the full pool.
  wake_hint_ = worker_claims_ == 0
                   ? std::max(1, wake_hint_ / 2)
                   : std::min(static_cast<int>(workers_.size()), wake_hint_ + 1);
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  int spin_budget = 64;
  for (;;) {
    // Spin-then-park: watch the epoch lock-free for a while — back-to-back
    // windows are caught here without a condvar round trip.  The budget
    // adapts: it grows when spinning catches a batch and halves every time
    // the worker ends up parking anyway (floor 1 keeps a cheap probe alive
    // so a recovering multicore run can grow it back).
    bool spun_in = false;
    for (int i = spin_budget; i > 0; --i) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (epoch_.load(std::memory_order_acquire) != seen) {
        spun_in = true;
        break;
      }
      cpu_pause();
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (spun_in) {
      spin_budget = std::min(kMaxSpin, std::max(64, spin_budget * 2));
      ++stats_.spin_grabs;
    } else if (!stop_.load(std::memory_order_relaxed) &&
               epoch_.load(std::memory_order_relaxed) == seen) {
      spin_budget = std::max(1, spin_budget / 2);
      ++stats_.parks;
      ++parked_;
      work_cv_.wait(lk, [this, seen] {
        return stop_.load(std::memory_order_relaxed) ||
               epoch_.load(std::memory_order_relaxed) != seen;
      });
      --parked_;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    seen = epoch_.load(std::memory_order_relaxed);
    drain(lk, /*caller=*/false);
  }
}

}  // namespace vprobe::cluster
