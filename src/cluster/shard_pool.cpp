#include "cluster/shard_pool.hpp"

#include <algorithm>

namespace vprobe::cluster {

ShardPool::ShardPool(int threads) {
  const int extra = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardPool::drain(std::unique_lock<std::mutex>& lk) {
  while (next_ < n_) {
    const int i = next_++;
    lk.unlock();
    std::exception_ptr err;
    try {
      (*fn_)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err && !error_) error_ = err;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ShardPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  fn_ = &fn;
  n_ = n;
  next_ = 0;
  pending_ = n;
  error_ = nullptr;
  work_cv_.notify_all();
  drain(lk);  // the caller is a worker too
  done_cv_.wait(lk, [this] { return pending_ == 0; });
  n_ = 0;
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ShardPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || next_ < n_; });
    if (stop_) return;
    drain(lk);
  }
}

}  // namespace vprobe::cluster
