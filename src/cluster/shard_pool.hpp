// Persistent worker pool for the PDES window synchronizer (docs/PDES.md).
//
// parallel_for(n, fn) runs fn(0..n-1) across the workers plus the calling
// thread and returns only once every index has finished, so the caller
// observes all worker writes: every claim, completion and wait goes through
// one mutex, which is the happens-before edge ThreadSanitizer checks in CI
// (the `pdes` label runs under the tsan preset).  Indices are claimed
// dynamically, so an expensive shard does not serialize behind a cheap one
// pinned to the same worker.
//
// The pool is deliberately tiny: the synchronizer calls parallel_for once
// per conservative window (tens of windows per simulated second), so a
// mutex + two condition variables cost microseconds against shard work of
// milliseconds.  Worker exceptions are captured and rethrown on the caller
// (first one wins); the remaining indices still run so the barrier always
// completes.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vprobe::cluster {

class ShardPool {
 public:
  /// `threads` is the total concurrency including the calling thread, so
  /// the pool spawns threads-1 workers; threads <= 1 spawns none and
  /// parallel_for degenerates to a plain loop.
  explicit ShardPool(int threads);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(i) for every i in [0, n); returns after all n finished.
  /// Rethrows the first exception any index raised.  Not reentrant.
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  void worker_loop();
  /// Claim and run indices until none are left.  `lk` holds mu_ on entry
  /// and exit; the lock is dropped around each fn(i) call.
  void drain(std::unique_lock<std::mutex>& lk);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new batch has indices
  std::condition_variable done_cv_;  ///< caller: pending_ hit zero
  const std::function<void(int)>* fn_ = nullptr;
  int n_ = 0;        ///< batch size; 0 between batches
  int next_ = 0;     ///< next unclaimed index
  int pending_ = 0;  ///< claimed-or-unclaimed indices not yet finished
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace vprobe::cluster
