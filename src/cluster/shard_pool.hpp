// Persistent worker pool for the PDES window synchronizer (docs/PDES.md).
//
// parallel_for(n, fn) runs fn(0..n-1) across the workers plus the calling
// thread and returns only once every index has finished, so the caller
// observes all worker writes: every claim, completion and wait goes through
// one mutex, which is the happens-before edge ThreadSanitizer checks in CI
// (the `pdes` label runs under the tsan preset).  Indices are claimed
// dynamically, so an expensive shard does not serialize behind a cheap one
// pinned to the same worker.
//
// Windows are microseconds apart, so the handoff cost is the product:
//
//  * Sub-group dispatch: a batch wakes at most n-1 parked workers (the
//    caller is the n-th lane), never the whole pool — a 2-busy-shard window
//    on an 8-wide pool leaves 6 workers asleep.  An adaptive wake hint
//    decays toward 1 when workers keep losing the claim race to the caller
//    (the 1-core builder), and chain-notifies in drain() heal under-waking:
//    a worker that claims an index while more remain wakes one more lane.
//  * Spin-then-park: between batches a worker spins on the batch epoch (an
//    atomic bumped before any notify) so back-to-back windows are joined
//    without a condvar park/unpark round trip.  The spin budget adapts —
//    it grows when spinning catches a batch and collapses to zero when the
//    worker ends up parking anyway, so a 1-core builder parks immediately.
//
// Worker exceptions are captured and rethrown on the caller (first one
// wins); the remaining indices still run so the barrier always completes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vprobe::cluster {

class ShardPool {
 public:
  /// Handoff counters, cumulative since construction.  Read them between
  /// batches (stats() takes the pool mutex); the synchronizer folds them
  /// into ClusterMetrics.
  struct Stats {
    std::uint64_t batches = 0;     ///< parallel_for calls that engaged workers
    std::uint64_t wakeups = 0;     ///< condvar notifies issued to parked workers
    std::uint64_t spin_grabs = 0;  ///< batches a worker joined from the spin phase
    std::uint64_t parks = 0;       ///< times a worker gave up spinning and parked
  };

  /// `threads` is the total concurrency including the calling thread, so
  /// the pool spawns threads-1 workers; threads <= 1 spawns none and
  /// parallel_for degenerates to a plain loop.
  explicit ShardPool(int threads);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(i) for every i in [0, n); returns after all n finished.
  /// Rethrows the first exception any index raised.  Not reentrant.
  void parallel_for(int n, const std::function<void(int)>& fn);

  Stats stats() const;

 private:
  static constexpr int kMaxSpin = 4096;  ///< upper bound on the spin budget

  void worker_loop();
  /// Claim and run indices until none are left.  `lk` holds mu_ on entry
  /// and exit; the lock is dropped around each fn(i) call.  Workers
  /// (caller=false) count their claims for the wake-hint adaptation and
  /// chain-notify the next parked lane while indices remain.
  void drain(std::unique_lock<std::mutex>& lk, bool caller);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new batch has indices
  std::condition_variable done_cv_;  ///< caller: pending_ hit zero
  /// Batch generation: bumped under mu_ before any notify, read lock-free
  /// by spinning workers (release/acquire pairs with the spin load).
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(int)>* fn_ = nullptr;
  int n_ = 0;        ///< batch size; 0 between batches
  int next_ = 0;     ///< next unclaimed index
  int pending_ = 0;  ///< claimed-or-unclaimed indices not yet finished
  int parked_ = 0;   ///< workers currently blocked in work_cv_.wait
  int wake_hint_ = 0;          ///< adaptive cap on wakeups per batch
  int worker_claims_ = 0;      ///< indices claimed by workers this batch
  Stats stats_;
  std::exception_ptr error_;
};

}  // namespace vprobe::cluster
