#!/usr/bin/env bash
# Full local CI gate. Mirrors .github/workflows/ci.yml so a green run
# here means a green run there.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== default preset: build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

echo "== labelled suites (golden, differential, engine, churn, costmodel, cluster, pdes, serving) =="
ctest --test-dir build -L golden --output-on-failure
ctest --test-dir build -L differential --output-on-failure
ctest --test-dir build -L engine --output-on-failure
ctest --test-dir build -L churn --output-on-failure
ctest --test-dir build -L costmodel --output-on-failure
ctest --test-dir build -L cluster --output-on-failure
ctest --test-dir build -L pdes --output-on-failure
ctest --test-dir build -L serving --output-on-failure

echo "== engine hot-path smoke (zero steady-state allocations gate) =="
./build/bench/engine_bench --smoke

echo "== cost-model memo smoke (bit-identity + hit-rate + lookup-count gate) =="
./build/bench/costmodel_bench --smoke

echo "== lifecycle churn fuzzer smoke (invariants under create/destroy/pause) =="
./build/tests/churn_fuzz_test --smoke

echo "== fleet scaling smoke (cluster determinism + live migration + FleetCheck) =="
./build/bench/scaling_machines --smoke

echo "== PDES scaling smoke (sharded/batched/unbatched digest identity + coalescing proof) =="
./build/bench/pdes_scaling --smoke

echo "== serving smoke (calm prefix + spike collapse + PDES identity + 1M-rps lazy-arrival gate) =="
./build/bench/serving_bench --smoke

echo "== tsan preset: parallel-executor tests under ThreadSanitizer =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"
ctest --preset tsan

echo "== release preset: checker hooks compiled out =="
cmake --preset release
cmake --build --preset release -j "$JOBS"
ctest --test-dir build-release -j "$JOBS"

echo "CI gate: all green"
